//! Parallel composition of I/O-IMCs.
//!
//! Composition follows the input/output automata discipline (Lynch & Tuttle) lifted
//! to interactive Markov chains:
//!
//! * an action that is an **output of one** component and an **input of the other**
//!   is performed jointly and remains an output of the composition (the output side
//!   decides when it happens, the input side follows instantaneously);
//! * an action that is an **input of both** components is received jointly and
//!   remains an input (the environment decides);
//! * all other interactive transitions, all internal transitions and all Markovian
//!   transitions are interleaved;
//! * components are *input-enabled by convention*: a component without an explicit
//!   transition for one of its input actions simply stays in its current state when
//!   that action occurs (the paper omits these self-loops from its figures).
//!
//! Only the reachable part of the product is constructed.

use crate::action::Action;
use crate::model::{InteractiveTransition, IoImcOf, Label, MarkovianTransitionOf, StateId};
use crate::rate::Rate;
use crate::Result;
use std::collections::HashMap;

/// Composes two I/O-IMCs in parallel.
///
/// # Errors
///
/// Returns an error if the two signatures are not composable: they share an output
/// action, or an internal action of one is visible to the other (rename internal
/// actions first in that case, see [`rename`](crate::rename)).
///
/// # Examples
///
/// ```
/// use ioimc::{Action, IoImcBuilder, compose::compose};
/// # fn main() -> Result<(), ioimc::Error> {
/// let ping = Action::new("ping");
///
/// let mut a = IoImcBuilder::new("sender");
/// let s = a.add_states(2);
/// a.initial(s[0]);
/// a.output(s[0], ping, s[1]);
/// let sender = a.build()?;
///
/// let mut b = IoImcBuilder::new("receiver");
/// let t = b.add_states(2);
/// b.initial(t[0]);
/// b.input(t[0], ping, t[1]);
/// let receiver = b.build()?;
///
/// let both = compose(&sender, &receiver)?;
/// assert_eq!(both.num_states(), 2); // only the synchronised path is reachable
/// assert!(both.signature().is_output(ping));
/// # Ok(())
/// # }
/// ```
pub fn compose<R: Rate>(left: &IoImcOf<R>, right: &IoImcOf<R>) -> Result<IoImcOf<R>> {
    left.signature()
        .check_composable(right.signature(), left.name(), right.name())?;
    let signature = left.signature().composed_with(right.signature());

    // Union of proposition name spaces, remembering the bit position each side's
    // propositions map to in the composition.
    let mut prop_names: Vec<String> = left.prop_names.clone();
    let mut right_prop_map: Vec<u8> = Vec::with_capacity(right.prop_names.len());
    for name in &right.prop_names {
        if let Some(i) = prop_names.iter().position(|p| p == name) {
            right_prop_map.push(i as u8);
        } else {
            assert!(
                prop_names.len() < 64,
                "at most 64 atomic propositions are supported"
            );
            prop_names.push(name.clone());
            right_prop_map.push((prop_names.len() - 1) as u8);
        }
    }
    let remap_right_mask = |mask: u64| -> u64 {
        let mut out = 0u64;
        for (bit, &target) in right_prop_map.iter().enumerate() {
            if mask & (1u64 << bit) != 0 {
                out |= 1u64 << target;
            }
        }
        out
    };

    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut pairs: Vec<(StateId, StateId)> = Vec::new();
    let mut props: Vec<u64> = Vec::new();
    let mut worklist: Vec<StateId> = Vec::new();

    let intern = |l: StateId,
                  r: StateId,
                  index: &mut HashMap<(StateId, StateId), StateId>,
                  pairs: &mut Vec<(StateId, StateId)>,
                  props: &mut Vec<u64>,
                  worklist: &mut Vec<StateId>|
     -> StateId {
        *index.entry((l, r)).or_insert_with(|| {
            let id = StateId(pairs.len() as u32);
            pairs.push((l, r));
            props.push(left.prop_mask(l) | remap_right_mask(right.prop_mask(r)));
            worklist.push(id);
            id
        })
    };

    let initial = intern(
        left.initial(),
        right.initial(),
        &mut index,
        &mut pairs,
        &mut props,
        &mut worklist,
    );

    let mut interactive: Vec<InteractiveTransition> = Vec::new();
    let mut markovian: Vec<MarkovianTransitionOf<R>> = Vec::new();

    // Collect the a?-successors of `state` in `model`; an empty list means the
    // implicit self-loop applies.
    let input_successors = |model: &IoImcOf<R>, state: StateId, action: Action| -> Vec<StateId> {
        model
            .interactive_from(state)
            .iter()
            .filter(|t| t.label == Label::Input(action))
            .map(|t| t.to)
            .collect()
    };

    while let Some(current) = worklist.pop() {
        let (ls, rs) = pairs[current.index()];

        // Markovian transitions interleave.
        for t in left.markovian_from(ls) {
            let to = intern(t.to, rs, &mut index, &mut pairs, &mut props, &mut worklist);
            markovian.push(MarkovianTransitionOf {
                from: current,
                rate: t.rate.clone(),
                to,
            });
        }
        for t in right.markovian_from(rs) {
            let to = intern(ls, t.to, &mut index, &mut pairs, &mut props, &mut worklist);
            markovian.push(MarkovianTransitionOf {
                from: current,
                rate: t.rate.clone(),
                to,
            });
        }

        // Interactive transitions of the left component.
        for t in left.interactive_from(ls) {
            let action = t.label.action();
            match t.label {
                Label::Internal(_) => {
                    let to = intern(t.to, rs, &mut index, &mut pairs, &mut props, &mut worklist);
                    interactive.push(InteractiveTransition {
                        from: current,
                        label: t.label,
                        to,
                    });
                }
                Label::Output(a) => {
                    if right.signature().is_input(a) {
                        let succs = input_successors(right, rs, a);
                        let targets = if succs.is_empty() { vec![rs] } else { succs };
                        for r_to in targets {
                            let to = intern(
                                t.to,
                                r_to,
                                &mut index,
                                &mut pairs,
                                &mut props,
                                &mut worklist,
                            );
                            interactive.push(InteractiveTransition {
                                from: current,
                                label: Label::Output(a),
                                to,
                            });
                        }
                    } else {
                        let to =
                            intern(t.to, rs, &mut index, &mut pairs, &mut props, &mut worklist);
                        interactive.push(InteractiveTransition {
                            from: current,
                            label: Label::Output(a),
                            to,
                        });
                    }
                }
                Label::Input(a) => {
                    if right.signature().is_output(a) {
                        // Driven from the right component's side below.
                        continue;
                    } else if right.signature().is_input(a) {
                        let succs = input_successors(right, rs, a);
                        let targets = if succs.is_empty() { vec![rs] } else { succs };
                        for r_to in targets {
                            let to = intern(
                                t.to,
                                r_to,
                                &mut index,
                                &mut pairs,
                                &mut props,
                                &mut worklist,
                            );
                            interactive.push(InteractiveTransition {
                                from: current,
                                label: Label::Input(a),
                                to,
                            });
                        }
                    } else {
                        let to =
                            intern(t.to, rs, &mut index, &mut pairs, &mut props, &mut worklist);
                        interactive.push(InteractiveTransition {
                            from: current,
                            label: Label::Input(a),
                            to,
                        });
                    }
                }
            }
            let _ = action;
        }

        // Interactive transitions of the right component.
        for t in right.interactive_from(rs) {
            match t.label {
                Label::Internal(_) => {
                    let to = intern(ls, t.to, &mut index, &mut pairs, &mut props, &mut worklist);
                    interactive.push(InteractiveTransition {
                        from: current,
                        label: t.label,
                        to,
                    });
                }
                Label::Output(a) => {
                    if left.signature().is_input(a) {
                        let succs = input_successors(left, ls, a);
                        let targets = if succs.is_empty() { vec![ls] } else { succs };
                        for l_to in targets {
                            let to = intern(
                                l_to,
                                t.to,
                                &mut index,
                                &mut pairs,
                                &mut props,
                                &mut worklist,
                            );
                            interactive.push(InteractiveTransition {
                                from: current,
                                label: Label::Output(a),
                                to,
                            });
                        }
                    } else {
                        let to =
                            intern(ls, t.to, &mut index, &mut pairs, &mut props, &mut worklist);
                        interactive.push(InteractiveTransition {
                            from: current,
                            label: Label::Output(a),
                            to,
                        });
                    }
                }
                Label::Input(a) => {
                    if left.signature().is_output(a) {
                        // Driven from the left component's side above.
                        continue;
                    } else if left.signature().is_input(a) {
                        let succs = input_successors(left, ls, a);
                        let targets = if succs.is_empty() { vec![ls] } else { succs };
                        for l_to in targets {
                            let to = intern(
                                l_to,
                                t.to,
                                &mut index,
                                &mut pairs,
                                &mut props,
                                &mut worklist,
                            );
                            interactive.push(InteractiveTransition {
                                from: current,
                                label: Label::Input(a),
                                to,
                            });
                        }
                    } else {
                        let to =
                            intern(ls, t.to, &mut index, &mut pairs, &mut props, &mut worklist);
                        interactive.push(InteractiveTransition {
                            from: current,
                            label: Label::Input(a),
                            to,
                        });
                    }
                }
            }
        }
    }

    let name = format!("{} || {}", left.name(), right.name());
    Ok(IoImcOf::from_parts(
        name,
        signature,
        pairs.len() as u32,
        initial,
        interactive,
        markovian,
        prop_names,
        props,
    ))
}

/// Composes a non-empty sequence of I/O-IMCs left to right.
///
/// # Errors
///
/// Propagates the first composability error encountered.
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn compose_all<R: Rate>(models: &[IoImcOf<R>]) -> Result<IoImcOf<R>> {
    assert!(
        !models.is_empty(),
        "compose_all requires at least one model"
    );
    let mut acc = models[0].clone();
    for m in &models[1..] {
        acc = compose(&acc, m)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::model::IoImc;
    use crate::Error;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    /// Sender fires `sig` after a delay; receiver waits for `sig` then fires `done`.
    fn sender_receiver() -> (IoImc, IoImc) {
        let sig = act("c_sig");
        let done = act("c_done");
        let mut a = IoImcBuilder::new("sender");
        let s = a.add_states(3);
        a.initial(s[0]);
        a.markovian(s[0], 2.0, s[1]);
        a.output(s[1], sig, s[2]);
        let sender = a.build().unwrap();

        let mut b = IoImcBuilder::new("receiver");
        let t = b.add_states(3);
        b.initial(t[0]);
        b.input(t[0], sig, t[1]);
        b.output(t[1], done, t[2]);
        let receiver = b.build().unwrap();
        (sender, receiver)
    }

    #[test]
    fn output_synchronises_with_input() {
        let (sender, receiver) = sender_receiver();
        let c = compose(&sender, &receiver).unwrap();
        assert!(c.validate().is_ok());
        // Reachable: (0,0) -rate-> (1,0) -sig!-> (2,1) -done!-> (2,2).
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.num_markovian(), 1);
        assert_eq!(c.num_interactive(), 2);
        assert!(c.signature().is_output(act("c_sig")));
        assert!(c.signature().is_output(act("c_done")));
        assert!(!c.signature().is_input(act("c_sig")));
    }

    #[test]
    fn missing_input_transition_acts_as_self_loop() {
        let sig = act("c_selfloop");
        let mut a = IoImcBuilder::new("emitter");
        let s = a.add_states(2);
        a.initial(s[0]);
        a.output(s[0], sig, s[1]);
        let emitter = a.build().unwrap();

        // Listener declares the input but has no transition for it: it stays put.
        let mut b = IoImcBuilder::new("listener");
        let t = b.add_state();
        b.initial(t);
        b.declare_input(sig);
        let listener = b.build().unwrap();

        let c = compose(&emitter, &listener).unwrap();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_interactive(), 1);
        assert!(c.interactive()[0].label.is_output());
    }

    #[test]
    fn output_clash_is_rejected() {
        let shared = act("c_clash");
        let mut a = IoImcBuilder::new("A");
        let s0 = a.add_state();
        a.initial(s0);
        a.output(s0, shared, s0);
        let left = a.build().unwrap();
        let right = left.clone();
        assert!(matches!(
            compose(&left, &right),
            Err(Error::OutputClash { .. })
        ));
    }

    #[test]
    fn markovian_transitions_interleave() {
        let mut a = IoImcBuilder::new("A");
        let s = a.add_states(2);
        a.initial(s[0]);
        a.markovian(s[0], 1.0, s[1]);
        let left = a.build().unwrap();

        let mut b = IoImcBuilder::new("B");
        let t = b.add_states(2);
        b.initial(t[0]);
        b.markovian(t[0], 3.0, t[1]);
        let right = b.build().unwrap();

        let c = compose(&left, &right).unwrap();
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.num_markovian(), 4);
        assert_eq!(c.num_interactive(), 0);
        // The initial state races both delays.
        assert_eq!(c.markovian_from(c.initial()).len(), 2);
        let total: f64 = c.markovian_from(c.initial()).iter().map(|t| t.rate).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn shared_inputs_stay_inputs() {
        let env = act("c_env_sig");
        let make = |name: &str| {
            let mut b = IoImcBuilder::new(name);
            let s = b.add_states(2);
            b.initial(s[0]);
            b.input(s[0], env, s[1]);
            b.build().unwrap()
        };
        let c = compose(&make("L"), &make("R")).unwrap();
        assert!(c.signature().is_input(env));
        // Both move together on the shared input.
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_interactive(), 1);
        assert!(c.interactive()[0].label.is_input());
    }

    #[test]
    fn props_are_merged() {
        let sig = act("c_prop_sig");
        let mut a = IoImcBuilder::new("A");
        let s = a.add_states(2);
        a.initial(s[0]);
        a.output(s[0], sig, s[1]);
        let pa = a.prop("a_done");
        a.set_prop(s[1], pa);
        let left = a.build().unwrap();

        let mut b = IoImcBuilder::new("B");
        let t = b.add_states(2);
        b.initial(t[0]);
        b.input(t[0], sig, t[1]);
        let pb = b.prop("b_done");
        b.set_prop(t[1], pb);
        let right = b.build().unwrap();

        let c = compose(&left, &right).unwrap();
        let a_done = c.prop("a_done").unwrap();
        let b_done = c.prop("b_done").unwrap();
        // After the synchronised output both propositions hold.
        let both: Vec<_> = c
            .states()
            .filter(|&s| c.has_prop(s, a_done) && c.has_prop(s, b_done))
            .collect();
        assert_eq!(both.len(), 1);
    }

    #[test]
    fn compose_all_chains_left_to_right() {
        let (sender, receiver) = sender_receiver();
        let mut m = IoImcBuilder::new("monitor");
        let u = m.add_states(2);
        m.initial(u[0]);
        m.input(u[0], act("c_done"), u[1]);
        let monitor = m.build().unwrap();

        let all = compose_all(&[sender, receiver, monitor]).unwrap();
        assert!(all.validate().is_ok());
        assert_eq!(all.num_states(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn compose_all_rejects_empty() {
        let _ = compose_all::<f64>(&[]);
    }

    #[test]
    fn composition_is_commutative_up_to_size() {
        let (sender, receiver) = sender_receiver();
        let lr = compose(&sender, &receiver).unwrap();
        let rl = compose(&receiver, &sender).unwrap();
        assert_eq!(lr.num_states(), rl.num_states());
        assert_eq!(lr.num_transitions(), rl.num_transitions());
    }
}
