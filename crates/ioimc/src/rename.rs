//! Action renaming.
//!
//! Renaming supports the *reuse of dynamic modules* highlighted in Section 5.2 of
//! the paper: the aggregated I/O-IMC of one module (say, module `A` of the cascaded
//! PAND system) can be reused for the identical modules `C` and `D` by renaming its
//! activation and firing signals.

use crate::action::Action;
use crate::model::{InteractiveTransition, IoImcOf, Label};
use crate::rate::Rate;
use crate::signature::Signature;
use crate::{Error, Result};
use std::collections::BTreeMap;

/// Renames actions of `model` according to `mapping` (old action → new action).
///
/// Actions not mentioned in the mapping are left unchanged.  The role of an action
/// (input/output/internal) is preserved.
///
/// # Errors
///
/// Returns [`Error::RenameCollision`] if the mapping would identify two actions
/// that were distinct in the original model (e.g. renaming `f_A` to `f_B` while the
/// model already uses `f_B`), since this would silently change synchronisation
/// behaviour.
///
/// # Examples
///
/// ```
/// use ioimc::{Action, IoImcBuilder, rename::rename};
/// use std::collections::BTreeMap;
/// # fn main() -> Result<(), ioimc::Error> {
/// let f_a = Action::new("f_module_A");
/// let f_c = Action::new("f_module_C");
/// let mut b = IoImcBuilder::new("module A");
/// let s = b.add_states(2);
/// b.initial(s[0]);
/// b.output(s[0], f_a, s[1]);
/// let module_a = b.build()?;
///
/// let mut map = BTreeMap::new();
/// map.insert(f_a, f_c);
/// let module_c = rename(&module_a, &map)?;
/// assert!(module_c.signature().is_output(f_c));
/// assert!(!module_c.signature().is_output(f_a));
/// # Ok(())
/// # }
/// ```
pub fn rename<R: Rate>(
    model: &IoImcOf<R>,
    mapping: &BTreeMap<Action, Action>,
) -> Result<IoImcOf<R>> {
    let apply = |a: Action| -> Action { mapping.get(&a).copied().unwrap_or(a) };

    // Detect collisions: two distinct source actions mapping to the same target,
    // or a mapped action landing on an existing unmapped action.
    let mut seen: BTreeMap<Action, Action> = BTreeMap::new();
    let originals: Vec<Action> = model
        .signature()
        .inputs()
        .chain(model.signature().outputs())
        .chain(model.signature().internals())
        .collect();
    for &orig in &originals {
        let target = apply(orig);
        if let Some(&prev) = seen.get(&target) {
            if prev != orig {
                return Err(Error::RenameCollision { action: target });
            }
        }
        seen.insert(target, orig);
    }

    let mut signature = Signature::new();
    for a in model.signature().inputs() {
        signature.add_input(apply(a));
    }
    for a in model.signature().outputs() {
        signature.add_output(apply(a));
    }
    for a in model.signature().internals() {
        signature.add_internal(apply(a));
    }
    signature.validate()?;

    let interactive: Vec<InteractiveTransition> = model
        .interactive()
        .iter()
        .map(|t| {
            let label = match t.label {
                Label::Input(a) => Label::Input(apply(a)),
                Label::Output(a) => Label::Output(apply(a)),
                Label::Internal(a) => Label::Internal(apply(a)),
            };
            InteractiveTransition {
                from: t.from,
                label,
                to: t.to,
            }
        })
        .collect();

    Ok(IoImcOf::from_parts(
        model.name().to_owned(),
        signature,
        model.num_states,
        model.initial(),
        interactive,
        model.markovian().to_vec(),
        model.prop_names.clone(),
        model.props.clone(),
    ))
}

/// Renames a single action, convenience wrapper around [`rename`].
///
/// # Errors
///
/// Same as [`rename`].
pub fn rename_one<R: Rate>(model: &IoImcOf<R>, from: Action, to: Action) -> Result<IoImcOf<R>> {
    let mut map = BTreeMap::new();
    map.insert(from, to);
    rename(model, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::model::IoImc;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn module() -> IoImc {
        let mut b = IoImcBuilder::new("module");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.input(s[0], act("rn_activate"), s[1]);
        b.markovian(s[1], 1.0, s[2]);
        b.output(s[2], act("rn_fail"), s[2]);
        b.build().unwrap()
    }

    #[test]
    fn rename_changes_signature_and_labels() {
        let m = module();
        let mut map = BTreeMap::new();
        map.insert(act("rn_fail"), act("rn_fail_copy"));
        map.insert(act("rn_activate"), act("rn_activate_copy"));
        let renamed = rename(&m, &map).unwrap();
        assert!(renamed.signature().is_output(act("rn_fail_copy")));
        assert!(renamed.signature().is_input(act("rn_activate_copy")));
        assert!(!renamed.signature().contains(act("rn_fail")));
        assert_eq!(renamed.num_states(), m.num_states());
        assert_eq!(renamed.num_transitions(), m.num_transitions());
        assert!(renamed.validate().is_ok());
    }

    #[test]
    fn unmapped_actions_survive() {
        let m = module();
        let renamed = rename_one(&m, act("rn_fail"), act("rn_fail2")).unwrap();
        assert!(renamed.signature().is_input(act("rn_activate")));
    }

    #[test]
    fn collision_with_existing_action_is_rejected() {
        let m = module();
        // Mapping the output onto the existing (unmapped) input action must fail.
        let err = rename_one(&m, act("rn_fail"), act("rn_activate")).unwrap_err();
        assert!(matches!(
            err,
            Error::RenameCollision { .. } | Error::ConflictingSignature { .. }
        ));
    }

    #[test]
    fn collision_between_two_mapped_actions_is_rejected() {
        let m = module();
        let mut map = BTreeMap::new();
        map.insert(act("rn_fail"), act("rn_same_target"));
        map.insert(act("rn_activate"), act("rn_same_target"));
        assert!(rename(&m, &map).is_err());
    }

    #[test]
    fn identity_rename_is_a_no_op() {
        let m = module();
        let renamed = rename(&m, &BTreeMap::new()).unwrap();
        assert_eq!(renamed.signature(), m.signature());
        assert_eq!(renamed.num_transitions(), m.num_transitions());
    }
}
