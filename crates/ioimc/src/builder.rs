//! Incremental construction of I/O-IMC models.

use crate::action::Action;
use crate::model::{InteractiveTransition, IoImcOf, Label, MarkovianTransitionOf, PropId, StateId};
use crate::rate::{Rate, RateForm};
use crate::signature::Signature;
use crate::{Error, Result};

/// Builder for [`IoImc`](crate::IoImc) models.
///
/// States are added first, then transitions; the signature is inferred from the
/// transitions but can be extended explicitly (e.g. to declare an input the model
/// ignores in every state, which the paper draws as implicit self-loops).
///
/// # Examples
///
/// A cold basic event: it waits for its activation signal, then fails after an
/// exponentially distributed delay and announces its failure.
///
/// ```
/// use ioimc::{Action, IoImcBuilder};
///
/// # fn main() -> Result<(), ioimc::Error> {
/// let activate = Action::new("a_A");
/// let fail = Action::new("f_A");
///
/// let mut b = IoImcBuilder::new("cold BE A");
/// let dormant = b.add_state();
/// let active = b.add_state();
/// let firing = b.add_state();
/// let fired = b.add_state();
/// b.initial(dormant);
/// b.input(dormant, activate, active);
/// b.markovian(active, 0.001, firing);
/// b.output(firing, fail, fired);
/// let be = b.build()?;
/// assert_eq!(be.num_states(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IoImcBuilderOf<R> {
    name: String,
    num_states: u32,
    initial: Option<StateId>,
    signature: Signature,
    interactive: Vec<InteractiveTransition>,
    markovian: Vec<MarkovianTransitionOf<R>>,
    prop_names: Vec<String>,
    props: Vec<u64>,
    error: Option<Error>,
}

/// Builder for numeric-rate models (the classical instantiation).
pub type IoImcBuilder = IoImcBuilderOf<f64>;

/// Builder for parametric models whose rates are [`RateForm`]s.
pub type ParametricIoImcBuilder = IoImcBuilderOf<RateForm>;

impl<R: Rate> IoImcBuilderOf<R> {
    /// Creates an empty builder for a model called `name`.
    pub fn new(name: impl Into<String>) -> IoImcBuilderOf<R> {
        IoImcBuilderOf {
            name: name.into(),
            num_states: 0,
            initial: None,
            signature: Signature::new(),
            interactive: Vec::new(),
            markovian: Vec::new(),
            prop_names: Vec::new(),
            props: Vec::new(),
            error: None,
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.num_states);
        self.num_states += 1;
        self.props.push(0);
        id
    }

    /// Adds `n` fresh states and returns their ids.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.num_states as usize
    }

    /// Declares `state` to be the initial state.
    pub fn initial(&mut self, state: StateId) -> &mut Self {
        if state.0 >= self.num_states {
            self.record_error(Error::UnknownState {
                state: state.0,
                num_states: self.num_states,
            });
        }
        self.initial = Some(state);
        self
    }

    fn record_error(&mut self, error: Error) {
        if self.error.is_none() {
            self.error = Some(error);
        }
    }

    fn check_state(&mut self, state: StateId) {
        if state.0 >= self.num_states {
            self.record_error(Error::UnknownState {
                state: state.0,
                num_states: self.num_states,
            });
        }
    }

    /// Adds an input transition `from --action?--> to` and records `action` as an
    /// input of the signature.
    pub fn input(&mut self, from: StateId, action: Action, to: StateId) -> &mut Self {
        self.check_state(from);
        self.check_state(to);
        self.signature.add_input(action);
        self.interactive.push(InteractiveTransition {
            from,
            label: Label::Input(action),
            to,
        });
        self
    }

    /// Adds an output transition `from --action!--> to` and records `action` as an
    /// output of the signature.
    pub fn output(&mut self, from: StateId, action: Action, to: StateId) -> &mut Self {
        self.check_state(from);
        self.check_state(to);
        self.signature.add_output(action);
        self.interactive.push(InteractiveTransition {
            from,
            label: Label::Output(action),
            to,
        });
        self
    }

    /// Adds an internal transition `from --action;--> to` and records `action` as an
    /// internal action of the signature.
    pub fn internal(&mut self, from: StateId, action: Action, to: StateId) -> &mut Self {
        self.check_state(from);
        self.check_state(to);
        self.signature.add_internal(action);
        self.interactive.push(InteractiveTransition {
            from,
            label: Label::Internal(action),
            to,
        });
        self
    }

    /// Adds a Markovian transition `from --rate--> to`.
    ///
    /// An invalid rate (for `f64`: not finite and strictly positive; see
    /// [`Rate::is_valid`]) is recorded as an error and reported by
    /// [`build`](Self::build).
    pub fn markovian(&mut self, from: StateId, rate: R, to: StateId) -> &mut Self {
        self.check_state(from);
        self.check_state(to);
        if !rate.is_valid() {
            self.record_error(Error::InvalidRate {
                rate: rate.to_string(),
            });
        } else {
            self.markovian
                .push(MarkovianTransitionOf { from, rate, to });
        }
        self
    }

    /// Declares `action` as an input even if no transition uses it yet.
    ///
    /// This is how a model states that it listens to (and ignores) a signal: the
    /// paper's convention of leaving out input self-loops.
    pub fn declare_input(&mut self, action: Action) -> &mut Self {
        self.signature.add_input(action);
        self
    }

    /// Declares `action` as an output even if no transition uses it yet.
    pub fn declare_output(&mut self, action: Action) -> &mut Self {
        self.signature.add_output(action);
        self
    }

    /// Registers (or looks up) an atomic proposition by name.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 distinct propositions are registered.
    pub fn prop(&mut self, name: &str) -> PropId {
        if let Some(i) = self.prop_names.iter().position(|p| p == name) {
            return PropId(i as u8);
        }
        assert!(
            self.prop_names.len() < 64,
            "at most 64 atomic propositions are supported"
        );
        self.prop_names.push(name.to_owned());
        PropId((self.prop_names.len() - 1) as u8)
    }

    /// Labels `state` with proposition `prop`.
    pub fn set_prop(&mut self, state: StateId, prop: PropId) -> &mut Self {
        self.check_state(state);
        if (state.0) < self.num_states {
            self.props[state.index()] |= 1u64 << prop.0;
        }
        self
    }

    /// Finishes construction and validates the model.
    ///
    /// # Errors
    ///
    /// Returns the first error recorded while building (unknown state, invalid
    /// rate), [`Error::MissingInitialState`] if no initial state was declared, or a
    /// signature conflict if one action was used in incompatible roles.
    pub fn build(self) -> Result<IoImcOf<R>> {
        if let Some(err) = self.error {
            return Err(err);
        }
        let initial = self.initial.ok_or(Error::MissingInitialState)?;
        self.signature.validate()?;
        let model = IoImcOf::from_parts(
            self.name,
            self.signature,
            self.num_states,
            initial,
            self.interactive,
            self.markovian,
            self.prop_names,
            self.props,
        );
        debug_assert!(model.validate().is_ok());
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn build_simple_model() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 2.0, s[1]);
        b.output(s[1], act("fire_b1"), s[2]);
        let m = b.build().unwrap();
        assert_eq!(m.num_states(), 3);
        assert!(m.signature().is_output(act("fire_b1")));
    }

    #[test]
    fn missing_initial_is_an_error() {
        let mut b = IoImcBuilder::new("m");
        b.add_state();
        assert_eq!(b.build().unwrap_err(), Error::MissingInitialState);
    }

    #[test]
    fn invalid_rate_is_an_error() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut b = IoImcBuilder::new("m");
            let s = b.add_states(2);
            b.initial(s[0]);
            b.markovian(s[0], bad, s[1]);
            match b.build() {
                Err(Error::InvalidRate { .. }) => {}
                other => panic!("expected InvalidRate, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_state_is_an_error() {
        let mut b = IoImcBuilder::new("m");
        let s0 = b.add_state();
        b.initial(s0);
        b.output(s0, act("x_b2"), StateId::new(17));
        match b.build() {
            Err(Error::UnknownState { state: 17, .. }) => {}
            other => panic!("expected UnknownState, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_roles_are_rejected() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(2);
        b.initial(s[0]);
        b.input(s[0], act("dup_b3"), s[1]);
        b.output(s[1], act("dup_b3"), s[0]);
        assert!(matches!(b.build(), Err(Error::ConflictingSignature { .. })));
    }

    #[test]
    fn declared_actions_enter_signature() {
        let mut b = IoImcBuilder::new("m");
        let s0 = b.add_state();
        b.initial(s0);
        b.declare_input(act("ignored_b4"));
        b.declare_output(act("never_fired_b4"));
        let m = b.build().unwrap();
        assert!(m.signature().is_input(act("ignored_b4")));
        assert!(m.signature().is_output(act("never_fired_b4")));
        assert_eq!(m.num_transitions(), 0);
    }

    #[test]
    fn props_are_registered_once() {
        let mut b = IoImcBuilder::new("m");
        let s0 = b.add_state();
        b.initial(s0);
        let p1 = b.prop("down");
        let p2 = b.prop("down");
        assert_eq!(p1, p2);
        b.set_prop(s0, p1);
        let m = b.build().unwrap();
        assert!(m.has_prop(s0, m.prop("down").unwrap()));
    }

    #[test]
    fn duplicate_transitions_are_deduplicated() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(2);
        b.initial(s[0]);
        b.input(s[0], act("dup_tr_b5"), s[1]);
        b.input(s[0], act("dup_tr_b5"), s[1]);
        let m = b.build().unwrap();
        assert_eq!(m.num_interactive(), 1);
    }
}
