//! Signature-based partition refinement.
//!
//! [`refine`] computes an equivalence on the states of an I/O-IMC and [`quotient`]
//! builds the corresponding reduced model.  Two modes are supported:
//!
//! * **strong** — two states are equivalent only if they agree on atomic
//!   propositions, have the same interactive moves into the same blocks, and the
//!   same cumulative Markovian rate into every block (ordinary lumpability).
//! * **weak** (branching-style) — internal transitions that stay inside the current
//!   block are treated as invisible: a state may take any number of such *inert*
//!   steps before exhibiting a visible move, and the Markovian rate condition is
//!   evaluated at the non-urgent states reachable by inert steps (maximal
//!   progress: urgent states never let time pass).
//!
//! The weak mode computes a refinement of weak bisimilarity for I/O-IMCs, so
//! merging the states of one block never changes any property expressible over the
//! visible actions, the Markovian timing and the atomic propositions — in
//! particular the failure-time distribution of a DFT.

use crate::model::{InteractiveTransition, IoImcOf, Label, MarkovianTransitionOf, StateId};
use crate::rate::Rate;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A partition of the states of a model into equivalence blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of[s]` is the block index of state `s`.
    pub block_of: Vec<u32>,
    /// Number of blocks.
    pub num_blocks: u32,
}

impl Partition {
    /// The block of `state`.
    pub fn block(&self, state: StateId) -> u32 {
        self.block_of[state.index()]
    }

    /// Returns the states of each block.
    pub fn blocks(&self) -> Vec<Vec<StateId>> {
        let mut out = vec![Vec::new(); self.num_blocks as usize];
        for (i, &b) in self.block_of.iter().enumerate() {
            out[b as usize].push(StateId::new(i as u32));
        }
        out
    }
}

/// Canonical form of a per-block Markovian rate map: cumulative rate *keys*
/// per target block (see [`Rate::key`]).
///
/// For numeric rates the key is the rate's bit pattern; for
/// [`RateForm`](crate::rate::RateForm) rates it is the canonical coefficient
/// vector, so two states are lumped only when their cumulative rate *forms*
/// into every block coincide — an equality of linear forms that holds under
/// **every** valuation of the parameters, which is what makes parametric
/// aggregation sound for a whole rate sweep at once.
type RateMap<K> = Vec<(u32, K)>;

fn rate_map<R: Rate>(model: &IoImcOf<R>, state: StateId, block_of: &[u32]) -> RateMap<R::Key> {
    let mut sums: BTreeMap<u32, R> = BTreeMap::new();
    for t in model.markovian_from(state) {
        sums.entry(block_of[t.to.index()])
            .or_insert_with(R::zero)
            .add_assign(&t.rate);
    }
    sums.into_iter().map(|(b, r)| (b, r.key())).collect()
}

/// Key describing one visible move: (label kind, action id, target block).
type Move = (u8, u32, u32);

fn move_key(label: Label, target_block: u32) -> Move {
    match label {
        Label::Input(a) => (0, a.id(), target_block),
        Label::Output(a) => (1, a.id(), target_block),
        Label::Internal(a) => (2, a.id(), target_block),
    }
}

/// The refinement signature of a single state under the current partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StateSignature<K> {
    old_block: u32,
    moves: Vec<Move>,
    rates: Vec<RateMap<K>>,
}

/// States reachable from `state` through *inert* internal transitions (internal
/// transitions whose target stays in the same block), including `state` itself.
fn inert_reach<R: Rate>(model: &IoImcOf<R>, state: StateId, block_of: &[u32]) -> Vec<StateId> {
    let own_block = block_of[state.index()];
    let mut seen = vec![state];
    let mut stack = vec![state];
    while let Some(s) = stack.pop() {
        for t in model.interactive_from(s) {
            if t.label.is_internal() && block_of[t.to.index()] == own_block && !seen.contains(&t.to)
            {
                seen.push(t.to);
                stack.push(t.to);
            }
        }
    }
    seen
}

fn signature<R: Rate>(
    model: &IoImcOf<R>,
    state: StateId,
    block_of: &[u32],
    weak: bool,
) -> StateSignature<R::Key> {
    let own_block = block_of[state.index()];
    let mut moves: BTreeSet<Move> = BTreeSet::new();
    let mut rates: BTreeSet<RateMap<R::Key>> = BTreeSet::new();

    if weak {
        for u in inert_reach(model, state, block_of) {
            for t in model.interactive_from(u) {
                let target_block = block_of[t.to.index()];
                let inert = t.label.is_internal() && target_block == own_block;
                if !inert {
                    moves.insert(move_key(t.label, target_block));
                }
            }
            if !model.is_urgent(u) {
                rates.insert(rate_map(model, u, block_of));
            }
        }
    } else {
        for t in model.interactive_from(state) {
            moves.insert(move_key(t.label, block_of[t.to.index()]));
        }
        rates.insert(rate_map(model, state, block_of));
    }

    StateSignature {
        old_block: own_block,
        moves: moves.into_iter().collect(),
        rates: rates.into_iter().collect(),
    }
}

/// Computes the coarsest signature-stable partition of `model`.
///
/// The initial partition separates states by their atomic-proposition labelling, so
/// proposition-labelled states (e.g. the "system down" marker used for
/// unavailability analysis) are never merged with unlabelled ones.
pub fn refine<R: Rate>(model: &IoImcOf<R>, weak: bool) -> Partition {
    let n = model.num_states();
    if n == 0 {
        return Partition {
            block_of: Vec::new(),
            num_blocks: 0,
        };
    }

    // Initial partition: by proposition mask.
    let mut block_of: Vec<u32> = vec![0; n];
    let mut prop_blocks: HashMap<u64, u32> = HashMap::new();
    let mut num_blocks = 0u32;
    for s in model.states() {
        let mask = model.prop_mask(s);
        let block = *prop_blocks.entry(mask).or_insert_with(|| {
            let b = num_blocks;
            num_blocks += 1;
            b
        });
        block_of[s.index()] = block;
    }

    loop {
        let mut sig_blocks: HashMap<StateSignature<R::Key>, u32> = HashMap::new();
        let mut next_block_of: Vec<u32> = vec![0; n];
        let mut next_num_blocks = 0u32;
        for s in model.states() {
            let sig = signature(model, s, &block_of, weak);
            let block = *sig_blocks.entry(sig).or_insert_with(|| {
                let b = next_num_blocks;
                next_num_blocks += 1;
                b
            });
            next_block_of[s.index()] = block;
        }
        let stable = next_num_blocks == num_blocks;
        block_of = next_block_of;
        num_blocks = next_num_blocks;
        if stable {
            break;
        }
    }

    Partition {
        block_of,
        num_blocks,
    }
}

/// Builds the quotient model of `model` under `partition`.
///
/// In weak mode, internal transitions between states of the same block are dropped
/// (they are unobservable), and the Markovian behaviour of a block is taken from
/// its non-urgent members (which, by construction of the refinement, all carry the
/// same cumulative rates).
pub fn quotient<R: Rate>(model: &IoImcOf<R>, partition: &Partition, weak: bool) -> IoImcOf<R> {
    let nb = partition.num_blocks as usize;
    let block_of = &partition.block_of;

    let mut props = vec![0u64; nb];
    for s in model.states() {
        props[block_of[s.index()] as usize] |= model.prop_mask(s);
    }

    let mut interactive: Vec<InteractiveTransition> = Vec::new();
    for t in model.interactive() {
        let from = block_of[t.from.index()];
        let to = block_of[t.to.index()];
        if weak && t.label.is_internal() && from == to {
            continue;
        }
        interactive.push(InteractiveTransition {
            from: StateId::new(from),
            label: t.label,
            to: StateId::new(to),
        });
    }

    let mut markovian: Vec<MarkovianTransitionOf<R>> = Vec::new();
    // For each block take the cumulative rates of one representative state.  In
    // strong mode every member agrees; in weak mode every *non-urgent* member
    // agrees and urgent members contribute nothing (maximal progress).
    let mut representative: Vec<Option<StateId>> = vec![None; nb];
    for s in model.states() {
        let b = block_of[s.index()] as usize;
        let eligible = if weak { !model.is_urgent(s) } else { true };
        if eligible && representative[b].is_none() {
            representative[b] = Some(s);
        }
    }
    for (b, rep) in representative.iter().enumerate() {
        if let Some(rep) = rep {
            let mut sums: BTreeMap<u32, R> = BTreeMap::new();
            for t in model.markovian_from(*rep) {
                sums.entry(block_of[t.to.index()])
                    .or_insert_with(R::zero)
                    .add_assign(&t.rate);
            }
            for (to, rate) in sums {
                if !rate.is_zero() {
                    markovian.push(MarkovianTransitionOf {
                        from: StateId::new(b as u32),
                        rate,
                        to: StateId::new(to),
                    });
                }
            }
        }
    }

    IoImcOf::from_parts(
        model.name().to_owned(),
        model.signature().clone(),
        nb as u32,
        StateId::new(block_of[model.initial().index()]),
        interactive,
        markovian,
        model.prop_names.clone(),
        props,
    )
    .restrict_to_reachable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::IoImcBuilder;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn strong_refinement_lumps_symmetric_states() {
        // Classic lumping: two intermediate states with identical rates to the same
        // absorbing state.
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(4);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.markovian(s[0], 1.0, s[2]);
        b.markovian(s[1], 5.0, s[3]);
        b.markovian(s[2], 5.0, s[3]);
        let m = b.build().unwrap();
        let p = refine(&m, false);
        assert_eq!(p.num_blocks, 3);
        assert_eq!(p.block(s[1]), p.block(s[2]));
        let q = quotient(&m, &p, false);
        assert_eq!(q.num_states(), 3);
        // Initial state's lumped rate must be 2.0.
        let total: f64 = q.markovian_from(q.initial()).iter().map(|t| t.rate).sum();
        assert!((total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn strong_refinement_distinguishes_different_rates() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(4);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.markovian(s[0], 1.0, s[2]);
        b.markovian(s[1], 5.0, s[3]);
        b.markovian(s[2], 7.0, s[3]);
        let m = b.build().unwrap();
        let p = refine(&m, false);
        assert_ne!(p.block(s[1]), p.block(s[2]));
    }

    #[test]
    fn weak_refinement_absorbs_inert_internal_steps() {
        let tau = act("part_tau");
        let f = act("part_f");
        // s1 --tau--> s2 --f!--> s3   versus   s4 --f!--> s3: s1, s2, s4 all
        // weakly offer f! and nothing else.
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(5);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.markovian(s[0], 1.0, s[4]);
        b.internal(s[1], tau, s[2]);
        b.output(s[2], f, s[3]);
        b.output(s[4], f, s[3]);
        let m = b.build().unwrap();
        let p = refine(&m, true);
        assert_eq!(p.block(s[1]), p.block(s[2]));
        assert_eq!(p.block(s[1]), p.block(s[4]));
        let q = quotient(&m, &p, true);
        assert_eq!(q.num_states(), 3);
    }

    #[test]
    fn weak_refinement_respects_markovian_timing() {
        let tau = act("part_tau2");
        // s1 --tau--> s2 --(rate 5)--> s3   vs   s4 --(rate 9)--> s3:
        // s1 and s4 must not be merged (different timing).
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(5);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.markovian(s[0], 1.0, s[4]);
        b.internal(s[1], tau, s[2]);
        b.markovian(s[2], 5.0, s[3]);
        b.markovian(s[4], 9.0, s[3]);
        let m = b.build().unwrap();
        let p = refine(&m, true);
        assert_ne!(p.block(s[1]), p.block(s[4]));
        // But s1 and s2 are equivalent: the inert step costs no time.
        assert_eq!(p.block(s[1]), p.block(s[2]));
    }

    #[test]
    fn propositions_split_the_initial_partition() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(2);
        b.initial(s[0]);
        let down = b.prop("down");
        b.set_prop(s[1], down);
        let m = b.build().unwrap();
        let p = refine(&m, true);
        assert_eq!(p.num_blocks, 2);
    }

    #[test]
    fn quotient_preserves_visible_outputs() {
        let f = act("part_f_preserved");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 2.0, s[1]);
        b.output(s[1], f, s[2]);
        let m = b.build().unwrap();
        let p = refine(&m, true);
        let q = quotient(&m, &p, true);
        assert!(q.interactive().iter().any(|t| t.label == Label::Output(f)));
        assert_eq!(q.num_states(), 3);
    }

    #[test]
    fn partition_blocks_enumeration_is_consistent() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.markovian(s[0], 1.0, s[2]);
        let m = b.build().unwrap();
        let p = refine(&m, false);
        let blocks = p.blocks();
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, m.num_states());
        for (bi, states) in blocks.iter().enumerate() {
            for &st in states {
                assert_eq!(p.block(st), bi as u32);
            }
        }
    }
}
