//! The maximal-progress assumption.
//!
//! Output and internal transitions of an I/O-IMC happen immediately: no time passes
//! in a state that has one enabled.  Consequently the Markovian transitions of such
//! *urgent* states can never fire and may be removed without changing any
//! observable behaviour.  Removing them early keeps intermediate compositions small
//! and is a precondition for the Markovian lumping performed by the partition
//! refinement.

use crate::model::IoImcOf;
use crate::rate::Rate;

/// Removes the Markovian transitions of every urgent state (a state with an
/// outgoing output or internal transition).
///
/// The returned model has the same states, signature and proposition labelling.
///
/// # Examples
///
/// ```
/// use ioimc::{Action, IoImcBuilder, bisim::cut_maximal_progress};
/// # fn main() -> Result<(), ioimc::Error> {
/// let f = Action::new("mp_doc_f");
/// let mut b = IoImcBuilder::new("m");
/// let s = b.add_states(3);
/// b.initial(s[0]);
/// b.output(s[0], f, s[1]);
/// b.markovian(s[0], 5.0, s[2]); // can never fire: s0 is urgent
/// let m = b.build()?;
/// let cut = cut_maximal_progress(&m);
/// assert_eq!(cut.num_markovian(), 0);
/// # Ok(())
/// # }
/// ```
pub fn cut_maximal_progress<R: Rate>(model: &IoImcOf<R>) -> IoImcOf<R> {
    let urgent: Vec<bool> = model.states().map(|s| model.is_urgent(s)).collect();
    let markovian = model
        .markovian()
        .iter()
        .filter(|t| !urgent[t.from.index()])
        .cloned()
        .collect();
    IoImcOf::from_parts(
        model.name().to_owned(),
        model.signature().clone(),
        model.num_states,
        model.initial(),
        model.interactive().to_vec(),
        markovian,
        model.prop_names.clone(),
        model.props.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::IoImcBuilder;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn markovians_of_urgent_states_are_cut() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(4);
        b.initial(s[0]);
        b.output(s[0], act("mp_out"), s[1]);
        b.markovian(s[0], 1.0, s[2]);
        b.internal(s[1], act("mp_tau"), s[2]);
        b.markovian(s[1], 2.0, s[3]);
        b.markovian(s[2], 3.0, s[3]);
        let m = b.build().unwrap();
        let cut = cut_maximal_progress(&m);
        // Only the transition of the non-urgent state s2 survives.
        assert_eq!(cut.num_markovian(), 1);
        assert_eq!(cut.markovian()[0].rate, 3.0);
        assert_eq!(cut.num_interactive(), m.num_interactive());
        assert_eq!(cut.num_states(), m.num_states());
    }

    #[test]
    fn input_transitions_do_not_make_a_state_urgent() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.input(s[0], act("mp_in"), s[1]);
        b.markovian(s[0], 4.0, s[2]);
        let m = b.build().unwrap();
        let cut = cut_maximal_progress(&m);
        // Inputs are delayable: the Markovian race with an input stays.
        assert_eq!(cut.num_markovian(), 1);
    }

    #[test]
    fn cut_is_idempotent() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.output(s[0], act("mp_idem"), s[1]);
        b.markovian(s[0], 1.0, s[2]);
        let m = b.build().unwrap();
        let once = cut_maximal_progress(&m);
        let twice = cut_maximal_progress(&once);
        assert_eq!(once.num_markovian(), twice.num_markovian());
        assert_eq!(once.num_interactive(), twice.num_interactive());
    }
}
