//! Elimination of deterministic internal ("vanishing") states.
//!
//! Hiding the synchronisation signals of a composition produces long chains of
//! states whose only behaviour is a single internal transition.  Such a state is
//! left immediately and deterministically, so every transition that targets it can
//! be redirected to its (transitive) successor.  This cheap pre-pass dramatically
//! shrinks intermediate models before the more expensive partition refinement runs.

use crate::model::{InteractiveTransition, IoImcOf, MarkovianTransitionOf, StateId};
use crate::rate::Rate;

/// Returns `true` if `state` is a *vanishing* state: its only outgoing behaviour is
/// exactly one internal transition (no inputs, no outputs, no Markovian
/// transitions) and it carries no atomic proposition.
fn is_vanishing<R: Rate>(model: &IoImcOf<R>, state: StateId) -> bool {
    if model.prop_mask(state) != 0 {
        return false;
    }
    if !model.markovian_from(state).is_empty() {
        return false;
    }
    let outgoing = model.interactive_from(state);
    outgoing.len() == 1 && outgoing[0].label.is_internal()
}

/// Short-circuits every vanishing state, redirecting incoming transitions to the
/// end of its internal chain.  Cycles of internal transitions are left untouched
/// (they denote divergence, which does not occur in DFT models but must not crash).
pub fn eliminate_deterministic_tau<R: Rate>(model: &IoImcOf<R>) -> IoImcOf<R> {
    let n = model.num_states();
    // forward[s] = Some(t) if s is vanishing with internal successor t.
    let mut forward: Vec<Option<StateId>> = vec![None; n];
    for s in model.states() {
        if is_vanishing(model, s) {
            forward[s.index()] = Some(model.interactive_from(s)[0].to);
        }
    }

    // Resolve chains with cycle detection: resolve(s) follows forward pointers
    // until a non-vanishing state or a cycle is found.
    let mut resolved: Vec<Option<StateId>> = vec![None; n];
    let resolve = |start: StateId,
                   forward: &[Option<StateId>],
                   resolved: &mut Vec<Option<StateId>>|
     -> StateId {
        if let Some(r) = resolved[start.index()] {
            return r;
        }
        let mut path = vec![start];
        let mut cur = start;
        let target = loop {
            match forward[cur.index()] {
                None => break cur,
                Some(next) => {
                    if let Some(r) = resolved[next.index()] {
                        break r;
                    }
                    if path.contains(&next) {
                        // Internal cycle: keep the entry point as its own target.
                        break next;
                    }
                    path.push(next);
                    cur = next;
                }
            }
        };
        for s in path {
            resolved[s.index()] = Some(target);
        }
        target
    };

    let mut map = vec![StateId::new(0); n];
    for s in model.states() {
        map[s.index()] = resolve(s, &forward, &mut resolved);
    }

    let initial = map[model.initial().index()];
    let interactive: Vec<InteractiveTransition> = model
        .interactive()
        .iter()
        .filter(|t| forward[t.from.index()].is_none() || map[t.from.index()] == t.from)
        .map(|t| InteractiveTransition {
            from: t.from,
            label: t.label,
            to: map[t.to.index()],
        })
        .collect();
    let markovian: Vec<MarkovianTransitionOf<R>> = model
        .markovian()
        .iter()
        .map(|t| MarkovianTransitionOf {
            from: t.from,
            rate: t.rate.clone(),
            to: map[t.to.index()],
        })
        .collect();

    let next = IoImcOf::from_parts(
        model.name().to_owned(),
        model.signature().clone(),
        model.num_states,
        initial,
        interactive,
        markovian,
        model.prop_names.clone(),
        model.props.clone(),
    );
    next.restrict_to_reachable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::IoImcBuilder;
    use crate::model::Label;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn chains_are_short_circuited() {
        let tau = act("te_tau");
        let f = act("te_f");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(5);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        b.internal(s[2], tau, s[3]);
        b.output(s[3], f, s[4]);
        let m = b.build().unwrap();
        let e = eliminate_deterministic_tau(&m);
        assert_eq!(e.num_states(), 3);
        assert_eq!(e.num_interactive(), 1);
        assert!(e.interactive()[0].label.is_output());
        assert!(e.validate().is_ok());
    }

    #[test]
    fn vanishing_initial_state_is_skipped() {
        let tau = act("te_tau_init");
        let f = act("te_f_init");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.internal(s[0], tau, s[1]);
        b.output(s[1], f, s[2]);
        let m = b.build().unwrap();
        let e = eliminate_deterministic_tau(&m);
        assert_eq!(e.num_states(), 2);
        assert!(e
            .interactive_from(e.initial())
            .iter()
            .any(|t| t.label == Label::Output(f)));
    }

    #[test]
    fn states_with_other_behaviour_are_kept() {
        let tau = act("te_tau_keep");
        let f = act("te_f_keep");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(4);
        b.initial(s[0]);
        // s1 has an internal transition *and* an output: not vanishing.
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        b.output(s[1], f, s[3]);
        let m = b.build().unwrap();
        let e = eliminate_deterministic_tau(&m);
        assert_eq!(e.num_states(), m.num_states());
    }

    #[test]
    fn labelled_states_are_kept() {
        let tau = act("te_tau_prop");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        let down = b.prop("down");
        b.set_prop(s[1], down);
        let m = b.build().unwrap();
        let e = eliminate_deterministic_tau(&m);
        // s1 carries a proposition and must survive.
        assert_eq!(e.num_states(), 3);
    }

    #[test]
    fn internal_cycles_do_not_loop_forever() {
        let tau = act("te_tau_cycle");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        b.internal(s[2], tau, s[1]);
        let m = b.build().unwrap();
        let e = eliminate_deterministic_tau(&m);
        assert!(e.validate().is_ok());
        assert!(e.num_states() >= 2);
    }

    #[test]
    fn elimination_is_idempotent() {
        let tau = act("te_tau_idem");
        let f = act("te_f_idem");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(4);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        b.output(s[2], f, s[3]);
        let m = b.build().unwrap();
        let once = eliminate_deterministic_tau(&m);
        let twice = eliminate_deterministic_tau(&once);
        assert_eq!(once.num_states(), twice.num_states());
    }
}
