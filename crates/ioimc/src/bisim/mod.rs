//! State-space aggregation (bisimulation minimisation).
//!
//! Compositional aggregation hinges on replacing an intermediate I/O-IMC by a
//! smaller, behaviourally equivalent one after every composition step.  The paper
//! uses *weak bisimulation* for I/O-IMCs; this module implements a sound and
//! practically effective pipeline:
//!
//! 1. **Maximal progress** ([`maximal_progress`]): Markovian transitions of states
//!    with an enabled output or internal transition can never fire (outputs and
//!    internal steps are immediate) and are removed.
//! 2. **Deterministic τ-elimination** ([`tau_elim`]): states whose only behaviour
//!    is a single internal transition are transient "vanishing" states and are
//!    short-circuited.  Hiding creates long chains of such states.
//! 3. **Signature-based partition refinement** ([`partition`]): a branching-style
//!    weak bisimulation with Markovian lumping evaluated at non-urgent states.
//!    The computed equivalence refines (is contained in) weak bisimilarity for
//!    I/O-IMCs, so the quotient preserves every measure the paper computes
//!    (time-bounded reachability of failure, steady-state unavailability).
//! 4. The pipeline is iterated until the state count no longer shrinks.
//!
//! [`minimize_strong`] restricts the refinement to strong bisimulation (no
//! abstraction of internal steps); it is used by tests as a conservative baseline.

pub mod maximal_progress;
pub mod partition;
pub mod tau_elim;

pub use maximal_progress::cut_maximal_progress;
pub use partition::{quotient, refine, Partition};
pub use tau_elim::eliminate_deterministic_tau;

use crate::model::IoImcOf;
use crate::rate::Rate;

/// Aggregates `model` modulo (branching-style) weak bisimulation with maximal
/// progress, returning an equivalent model with at most as many states.
///
/// # Examples
///
/// ```
/// use ioimc::{Action, IoImcBuilder, bisim::minimize};
/// # fn main() -> Result<(), ioimc::Error> {
/// // Two states that both just fire `f` after rate 1 are merged.
/// let f = Action::new("minimize_doc_f");
/// let mut b = IoImcBuilder::new("m");
/// let s = b.add_states(4);
/// b.initial(s[0]);
/// b.markovian(s[0], 1.0, s[1]);
/// b.markovian(s[0], 1.0, s[2]);
/// b.output(s[1], f, s[3]);
/// b.output(s[2], f, s[3]);
/// let m = b.build()?;
/// let reduced = minimize(&m);
/// assert!(reduced.num_states() < m.num_states());
/// # Ok(())
/// # }
/// ```
pub fn minimize<R: Rate>(model: &IoImcOf<R>) -> IoImcOf<R> {
    minimize_with(model, true)
}

/// Aggregates `model` modulo strong bisimulation (with Markovian lumping and
/// maximal progress, but no abstraction of internal transitions).
pub fn minimize_strong<R: Rate>(model: &IoImcOf<R>) -> IoImcOf<R> {
    minimize_with(model, false)
}

fn minimize_with<R: Rate>(model: &IoImcOf<R>, weak: bool) -> IoImcOf<R> {
    let mut current = cut_maximal_progress(model);
    current = current.restrict_to_reachable();
    loop {
        let before = current.num_states() + current.num_transitions();
        if weak {
            current = eliminate_deterministic_tau(&current);
        }
        let part = refine(&current, weak);
        current = quotient(&current, &part, weak);
        current = cut_maximal_progress(&current);
        current = current.restrict_to_reachable();
        let after = current.num_states() + current.num_transitions();
        if after >= before {
            break;
        }
    }
    let mut result = current;
    result.set_name(format!("min({})", model.name()));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::IoImcBuilder;
    use crate::compose::compose;
    use crate::hide::hide;
    use crate::model::IoImc;
    use crate::model::Label;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    /// The Figure 2 example of the paper: A fires `a!` after a delay, B waits for
    /// `a?` and then fires `b!` after a delay.  Composing, hiding `a` and
    /// aggregating collapses the interleaving diamond.
    fn figure2() -> (IoImc, IoImc) {
        let a = act("bisim_fig2_a");
        let b_sig = act("bisim_fig2_b");

        // A: 1 --lambda--> 2 --a!--> 3   (the paper uses the same rate in both
        // components, which is what makes the interleaving diamond collapse).
        let mut ab = IoImcBuilder::new("A");
        let s = ab.add_states(3);
        ab.initial(s[0]);
        ab.markovian(s[0], 1.3, s[1]);
        ab.output(s[1], a, s[2]);
        let model_a = ab.build().unwrap();

        // B: 1 --lambda--> 2, 1 --a?--> 3, 2 --a?--> 4, 4 --lambda--> 4', 3 --lambda--> 4
        // A simplified faithful rendering: B fires b! only after it has both seen a?
        // and let its own delay elapse.
        let mut bb = IoImcBuilder::new("B");
        let t = bb.add_states(5);
        bb.initial(t[0]);
        bb.markovian(t[0], 1.3, t[1]);
        bb.input(t[0], a, t[2]);
        bb.input(t[1], a, t[3]);
        bb.markovian(t[2], 1.3, t[3]);
        bb.output(t[3], b_sig, t[4]);
        let model_b = bb.build().unwrap();
        (model_a, model_b)
    }

    #[test]
    fn figure2_pipeline_reduces_the_composition() {
        let (ma, mb) = figure2();
        let composed = compose(&ma, &mb).unwrap();
        let hidden = hide(&composed, &[act("bisim_fig2_a")]).unwrap();
        let reduced = minimize(&hidden);
        assert!(reduced.validate().is_ok());
        assert!(
            reduced.num_states() < hidden.num_states(),
            "aggregation should shrink the model ({} -> {})",
            hidden.num_states(),
            reduced.num_states()
        );
        // The observable behaviour is: two identical exponential delays in some
        // order, then b!; as in Figure 2(c) the quotient has four states.
        assert!(
            reduced.num_states() <= 4,
            "got {} states",
            reduced.num_states()
        );
        // The two interleaved first delays are lumped into a single rate-2λ move.
        let initial_rate: f64 = reduced
            .markovian_from(reduced.initial())
            .iter()
            .map(|t| t.rate)
            .sum();
        assert!((initial_rate - 2.6).abs() < 1e-9);
        // b! must still be observable.
        assert!(reduced
            .interactive()
            .iter()
            .any(|t| t.label == Label::Output(act("bisim_fig2_b"))));
    }

    #[test]
    fn identical_branches_are_lumped() {
        let f = act("bisim_lump_f");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(6);
        b.initial(s[0]);
        // Two parallel branches with identical behaviour.
        b.markovian(s[0], 2.0, s[1]);
        b.markovian(s[0], 3.0, s[2]);
        b.markovian(s[1], 1.0, s[3]);
        b.markovian(s[2], 1.0, s[4]);
        b.output(s[3], f, s[5]);
        b.output(s[4], f, s[5]);
        let m = b.build().unwrap();
        let red = minimize(&m);
        // s1/s2 merge, s3/s4 merge: initial, middle, firing, fired = 4 states.
        assert_eq!(red.num_states(), 4);
        // The two initial rates must be preserved as a single lumped rate 5.
        let total: f64 = red
            .markovian_from(red.initial())
            .iter()
            .map(|t| t.rate)
            .sum();
        assert!((total - 5.0).abs() < 1e-12);
    }

    #[test]
    fn maximal_progress_removes_race_with_immediate_output() {
        let f = act("bisim_mp_f");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.output(s[0], f, s[1]);
        b.markovian(s[0], 10.0, s[2]);
        let m = b.build().unwrap();
        let red = minimize(&m);
        // The Markovian transition can never fire; state s2 becomes unreachable.
        assert_eq!(red.num_markovian(), 0);
        assert!(red.num_states() <= 2);
    }

    #[test]
    fn tau_chains_collapse() {
        let tau = act("bisim_tau");
        let f = act("bisim_tau_f");
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(6);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.internal(s[1], tau, s[2]);
        b.internal(s[2], tau, s[3]);
        b.internal(s[3], tau, s[4]);
        b.output(s[4], f, s[5]);
        let m = b.build().unwrap();
        let red = minimize(&m);
        // initial --1.0--> firing --f!--> fired.
        assert_eq!(red.num_states(), 3);
        assert_eq!(red.num_markovian(), 1);
        assert_eq!(red.num_interactive(), 1);
    }

    #[test]
    fn strong_minimisation_is_not_coarser_than_weak() {
        let (ma, mb) = figure2();
        let composed = compose(&ma, &mb).unwrap();
        let hidden = hide(&composed, &[act("bisim_fig2_a")]).unwrap();
        let weak = minimize(&hidden);
        let strong = minimize_strong(&hidden);
        assert!(strong.num_states() >= weak.num_states());
        assert!(strong.validate().is_ok());
    }

    #[test]
    fn props_block_merging() {
        // Two otherwise identical absorbing states, one labelled "down": they must
        // not be merged.
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 1.0, s[1]);
        b.markovian(s[0], 1.0, s[2]);
        let down = b.prop("down");
        b.set_prop(s[2], down);
        let m = b.build().unwrap();
        let red = minimize(&m);
        assert_eq!(red.num_states(), 3);
        let down = red.prop("down").unwrap();
        assert_eq!(red.states_with_prop(down).len(), 1);
    }

    #[test]
    fn minimisation_is_idempotent() {
        let (ma, mb) = figure2();
        let composed = compose(&ma, &mb).unwrap();
        let hidden = hide(&composed, &[act("bisim_fig2_a")]).unwrap();
        let once = minimize(&hidden);
        let twice = minimize(&once);
        assert_eq!(once.num_states(), twice.num_states());
        assert_eq!(once.num_transitions(), twice.num_transitions());
    }
}
