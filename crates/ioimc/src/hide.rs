//! Hiding of output actions.
//!
//! After two components have been composed, the signals they used to communicate
//! are often not needed by any other component.  *Hiding* turns such output actions
//! into internal actions, which makes them invisible to further composition and —
//! crucially — lets the weak-bisimulation aggregation abstract them away.  This is
//! Step 3 of the conversion/analysis algorithm in Section 5 of the paper.

use crate::action::Action;
use crate::model::{InteractiveTransition, IoImcOf, Label};
use crate::rate::Rate;
use crate::{Error, Result};
use std::collections::BTreeSet;

/// Hides the given output actions of `model`, turning them into internal actions.
///
/// Actions not in the model's signature at all are ignored (hiding is idempotent
/// and tolerant of over-approximated hide sets); actions that are *inputs* of the
/// model are rejected, because hiding an input would silently disconnect the model
/// from its environment.
///
/// # Errors
///
/// Returns [`Error::NotAnOutput`] if one of the actions is an input of the model.
///
/// # Examples
///
/// ```
/// use ioimc::{Action, IoImcBuilder, hide::hide};
/// # fn main() -> Result<(), ioimc::Error> {
/// let a = Action::new("internal_signal");
/// let mut b = IoImcBuilder::new("m");
/// let s = b.add_states(2);
/// b.initial(s[0]);
/// b.output(s[0], a, s[1]);
/// let m = b.build()?;
/// let hidden = hide(&m, &[a])?;
/// assert!(hidden.signature().is_internal(a));
/// assert!(hidden.interactive()[0].label.is_internal());
/// # Ok(())
/// # }
/// ```
pub fn hide<R: Rate>(model: &IoImcOf<R>, actions: &[Action]) -> Result<IoImcOf<R>> {
    let to_hide: BTreeSet<Action> = actions.iter().copied().collect();
    for &a in &to_hide {
        if model.signature().is_input(a) {
            return Err(Error::NotAnOutput { action: a });
        }
    }

    let mut signature = model.signature().clone();
    for &a in &to_hide {
        if signature.is_output(a) {
            signature.remove(a);
            signature.add_internal(a);
        }
    }

    let interactive: Vec<InteractiveTransition> = model
        .interactive()
        .iter()
        .map(|t| match t.label {
            Label::Output(a) if to_hide.contains(&a) => InteractiveTransition {
                from: t.from,
                label: Label::Internal(a),
                to: t.to,
            },
            _ => *t,
        })
        .collect();

    Ok(IoImcOf::from_parts(
        model.name().to_owned(),
        signature,
        model.num_states,
        model.initial(),
        interactive,
        model.markovian().to_vec(),
        model.prop_names.clone(),
        model.props.clone(),
    ))
}

/// Hides *all* output actions of the model except those listed in `keep`.
///
/// This is the form used at the end of compositional aggregation, where only the
/// top-level failure (and, for repairable systems, repair) signal must stay
/// observable.
///
/// # Errors
///
/// Never fails for well-formed models; the error type is kept for uniformity with
/// [`hide`].
pub fn hide_all_except<R: Rate>(model: &IoImcOf<R>, keep: &[Action]) -> Result<IoImcOf<R>> {
    let keep: BTreeSet<Action> = keep.iter().copied().collect();
    let to_hide: Vec<Action> = model
        .signature()
        .outputs()
        .filter(|a| !keep.contains(a))
        .collect();
    hide(model, &to_hide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;
    use crate::model::IoImc;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn two_output_model() -> IoImc {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.output(s[0], act("h_first"), s[1]);
        b.output(s[1], act("h_second"), s[2]);
        b.input(s[0], act("h_input"), s[2]);
        b.build().unwrap()
    }

    #[test]
    fn hiding_turns_outputs_internal() {
        let m = two_output_model();
        let h = hide(&m, &[act("h_first")]).unwrap();
        assert!(h.signature().is_internal(act("h_first")));
        assert!(h.signature().is_output(act("h_second")));
        let labels: Vec<_> = h.interactive().iter().map(|t| t.label).collect();
        assert!(labels.contains(&Label::Internal(act("h_first"))));
        assert!(labels.contains(&Label::Output(act("h_second"))));
        assert!(h.validate().is_ok());
    }

    #[test]
    fn hiding_inputs_is_rejected() {
        let m = two_output_model();
        assert_eq!(
            hide(&m, &[act("h_input")]).unwrap_err(),
            Error::NotAnOutput {
                action: act("h_input")
            }
        );
    }

    #[test]
    fn hiding_unknown_actions_is_a_no_op() {
        let m = two_output_model();
        let h = hide(&m, &[act("h_not_in_model")]).unwrap();
        assert_eq!(h.num_transitions(), m.num_transitions());
        assert_eq!(h.signature(), m.signature());
    }

    #[test]
    fn hide_all_except_keeps_only_requested_outputs() {
        let m = two_output_model();
        let h = hide_all_except(&m, &[act("h_second")]).unwrap();
        assert!(h.signature().is_internal(act("h_first")));
        assert!(h.signature().is_output(act("h_second")));
        assert!(h.signature().is_input(act("h_input")));
    }

    #[test]
    fn hiding_is_idempotent() {
        let m = two_output_model();
        let once = hide(&m, &[act("h_first")]).unwrap();
        let twice = hide(&once, &[act("h_first")]).unwrap();
        assert_eq!(once.num_transitions(), twice.num_transitions());
        assert_eq!(once.signature(), twice.signature());
    }
}
