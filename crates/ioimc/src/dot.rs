//! Graphviz (DOT) export.
//!
//! Rendering intermediate models is invaluable when debugging gate semantics; the
//! drawing conventions follow the paper: Markovian transitions are dashed and
//! labelled with their rate, interactive transitions are solid and labelled
//! `a?`/`a!`/`a;`, the initial state is marked, and proposition-labelled states are
//! shaded.

use crate::model::IoImcOf;
use crate::rate::Rate;
use std::fmt::Write as _;

/// Renders `model` as a Graphviz `digraph`.
///
/// # Examples
///
/// ```
/// use ioimc::{Action, IoImcBuilder, dot::to_dot};
/// # fn main() -> Result<(), ioimc::Error> {
/// let mut b = IoImcBuilder::new("tiny");
/// let s = b.add_states(2);
/// b.initial(s[0]);
/// b.markovian(s[0], 0.5, s[1]);
/// let m = b.build()?;
/// let dot = to_dot(&m);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("0.5"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot<R: Rate>(model: &IoImcOf<R>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(model.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  __init [shape=point];");
    let _ = writeln!(out, "  __init -> s{};", model.initial().index());
    for s in model.states() {
        let mut attrs = Vec::new();
        let props: Vec<&str> = model
            .prop_names()
            .iter()
            .enumerate()
            .filter(|(i, _)| model.prop_mask(s) & (1u64 << i) != 0)
            .map(|(_, n)| n.as_str())
            .collect();
        if !props.is_empty() {
            attrs.push("style=filled".to_owned());
            attrs.push("fillcolor=lightgray".to_owned());
            attrs.push(format!("xlabel=\"{}\"", escape(&props.join(","))));
        }
        let _ = writeln!(
            out,
            "  s{} [label=\"{}\"{}{}];",
            s.index(),
            s.index(),
            if attrs.is_empty() { "" } else { ", " },
            attrs.join(", ")
        );
    }
    for t in model.interactive() {
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\"];",
            t.from.index(),
            t.to.index(),
            escape(&t.label.to_string())
        );
    }
    for t in model.markovian() {
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\", style=dashed];",
            t.from.index(),
            t.to.index(),
            t.rate
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::builder::IoImcBuilder;

    #[test]
    fn dot_output_contains_all_transitions() {
        let mut b = IoImcBuilder::new("dot test \"quoted\"");
        let s = b.add_states(3);
        b.initial(s[0]);
        b.markovian(s[0], 2.5, s[1]);
        b.output(s[1], Action::new("dot_fire"), s[2]);
        let down = b.prop("down");
        b.set_prop(s[2], down);
        let m = b.build().unwrap();
        let dot = to_dot(&m);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("2.5"));
        assert!(dot.contains("dot_fire!"));
        assert!(dot.contains("lightgray"));
        assert!(dot.contains("\\\"quoted\\\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn initial_state_is_marked() {
        let mut b = IoImcBuilder::new("m");
        let s = b.add_states(2);
        b.initial(s[1]);
        b.markovian(s[1], 1.0, s[0]);
        let m = b.build().unwrap();
        let dot = to_dot(&m);
        assert!(dot.contains("__init -> s1"));
    }
}
