//! Interned action names.
//!
//! Actions are the communication alphabet of I/O-IMCs.  The same action name is
//! referenced from many models (a firing signal `f_A` appears as an output of the
//! element `A` and as an input of every gate listening to `A`), so action names are
//! interned process-wide and [`Action`] is a cheap `Copy` handle.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The role an action plays in a particular model.
///
/// The same [`Action`] can be an output for one I/O-IMC and an input for another;
/// the kind is therefore a property of a transition or a signature entry, not of
/// the action itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionKind {
    /// A delayable input action, written `a?`.
    Input,
    /// An immediate output action, written `a!`.
    Output,
    /// An immediate internal action, written `a;`.
    Internal,
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Input => write!(f, "?"),
            ActionKind::Output => write!(f, "!"),
            ActionKind::Internal => write!(f, ";"),
        }
    }
}

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// An interned action name.
///
/// Two `Action` values compare equal if and only if they were created from the same
/// string.  The ordering is by interning index and therefore stable within a
/// process run but not across runs; use [`Action::name`] when a stable order is
/// required.
///
/// # Examples
///
/// ```
/// use ioimc::Action;
/// let a = Action::new("f_pump");
/// let b = Action::new("f_pump");
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "f_pump");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    id: u32,
}

impl Action {
    /// Interns `name` and returns the corresponding action handle.
    pub fn new(name: &str) -> Action {
        let mut guard = interner().lock().expect("action interner poisoned");
        if let Some(&id) = guard.by_name.get(name) {
            return Action { id };
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = guard.names.len() as u32;
        guard.names.push(leaked);
        guard.by_name.insert(leaked, id);
        Action { id }
    }

    /// Returns the name this action was interned from.
    pub fn name(&self) -> &'static str {
        let guard = interner().lock().expect("action interner poisoned");
        guard.names[self.id as usize]
    }

    /// Returns the process-wide interning index of this action.
    ///
    /// Mostly useful for building dense per-action tables.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Action({})", self.name())
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for Action {
    fn from(name: &str) -> Action {
        Action::new(name)
    }
}

impl From<String> for Action {
    fn from(name: String) -> Action {
        Action::new(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Action::new("alpha");
        let b = Action::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_names_are_distinct_actions() {
        let a = Action::new("left");
        let b = Action::new("right");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn name_round_trips() {
        let a = Action::new("f_system");
        assert_eq!(a.name(), "f_system");
        assert_eq!(a.to_string(), "f_system");
        assert_eq!(format!("{a:?}"), "Action(f_system)");
    }

    #[test]
    fn from_impls_intern() {
        let a: Action = "sig".into();
        let b: Action = String::from("sig").into();
        assert_eq!(a, b);
    }

    #[test]
    fn kind_display() {
        assert_eq!(ActionKind::Input.to_string(), "?");
        assert_eq!(ActionKind::Output.to_string(), "!");
        assert_eq!(ActionKind::Internal.to_string(), ";");
    }

    #[test]
    fn interning_many_actions_is_consistent() {
        let actions: Vec<Action> = (0..256)
            .map(|i| Action::new(&format!("bulk_action_{i}")))
            .collect();
        for (i, act) in actions.iter().enumerate() {
            assert_eq!(act.name(), format!("bulk_action_{i}"));
            assert_eq!(*act, Action::new(&format!("bulk_action_{i}")));
        }
    }
}
