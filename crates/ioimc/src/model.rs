//! The I/O-IMC model structure.
//!
//! An [`IoImc`] is an immutable, validated model: a finite set of states, an
//! initial state, interactive transitions labelled with input/output/internal
//! actions, Markovian transitions labelled with rates, an action signature and an
//! optional labelling of states with atomic propositions (used, for instance, to
//! mark "system down" states for unavailability analysis).
//!
//! Models are created with [`IoImcBuilder`](crate::builder::IoImcBuilder) and
//! transformed with the operations in [`compose`](crate::compose),
//! [`hide`](crate::hide), [`rename`](crate::rename) and [`bisim`](crate::bisim).

use crate::action::Action;
use crate::rate::{Rate, RateForm};
use crate::signature::Signature;
use crate::{Error, Result};
use std::fmt;

/// Identifier of a state inside one particular [`IoImc`].
///
/// State ids are dense indices `0..num_states` and are only meaningful relative to
/// the model that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Creates a state id from a raw index.
    pub fn new(index: u32) -> StateId {
        StateId(index)
    }

    /// The raw index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` this id wraps — the codec's wire representation.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of an atomic proposition of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropId(pub(crate) u8);

impl PropId {
    /// The raw index of this proposition (bit position in the per-state mask).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The label of an interactive transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// A delayable input action `a?`.
    Input(Action),
    /// An immediate output action `a!`.
    Output(Action),
    /// An immediate internal action `a;`.
    Internal(Action),
}

impl Label {
    /// The action carried by this label.
    pub fn action(self) -> Action {
        match self {
            Label::Input(a) | Label::Output(a) | Label::Internal(a) => a,
        }
    }

    /// Returns `true` for output and internal labels, which happen without letting
    /// time pass (the *maximal progress* assumption).
    pub fn is_immediate(self) -> bool {
        matches!(self, Label::Output(_) | Label::Internal(_))
    }

    /// Returns `true` for input labels.
    pub fn is_input(self) -> bool {
        matches!(self, Label::Input(_))
    }

    /// Returns `true` for output labels.
    pub fn is_output(self) -> bool {
        matches!(self, Label::Output(_))
    }

    /// Returns `true` for internal labels.
    pub fn is_internal(self) -> bool {
        matches!(self, Label::Internal(_))
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Input(a) => write!(f, "{}?", a.name()),
            Label::Output(a) => write!(f, "{}!", a.name()),
            Label::Internal(a) => write!(f, "{};", a.name()),
        }
    }
}

/// An interactive (input/output/internal) transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractiveTransition {
    /// Source state.
    pub from: StateId,
    /// Transition label.
    pub label: Label,
    /// Target state.
    pub to: StateId,
}

/// A Markovian transition with an exponential rate of type `R`
/// (see [`Rate`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovianTransitionOf<R> {
    /// Source state.
    pub from: StateId,
    /// Rate of the exponential delay; always valid per [`Rate::is_valid`] (for
    /// `f64`: finite and strictly positive).
    pub rate: R,
    /// Target state.
    pub to: StateId,
}

/// A Markovian transition with a concrete numeric rate.
pub type MarkovianTransition = MarkovianTransitionOf<f64>;

/// An input/output interactive Markov chain, generic over its rate type.
///
/// `R = f64` ([`IoImc`]) is the classical numeric model; `R = `[`RateForm`]
/// ([`ParametricIoImc`]) carries symbolic linear rate forms through the same
/// composition/hiding/aggregation pipeline, enabling one aggregation to serve a
/// whole sweep of rate valuations.
///
/// See the [crate documentation](crate) for the modelling background and the
/// builder example.
#[derive(Debug, Clone)]
pub struct IoImcOf<R> {
    pub(crate) name: String,
    pub(crate) signature: Signature,
    pub(crate) num_states: u32,
    pub(crate) initial: StateId,
    pub(crate) interactive: Vec<InteractiveTransition>,
    pub(crate) markovian: Vec<MarkovianTransitionOf<R>>,
    pub(crate) prop_names: Vec<String>,
    pub(crate) props: Vec<u64>,
    /// `interactive` is sorted by source state; `interactive_index[s]..interactive_index[s+1]`
    /// is the range of transitions leaving state `s`.
    pub(crate) interactive_index: Vec<u32>,
    /// Same layout as `interactive_index`, for `markovian`.
    pub(crate) markovian_index: Vec<u32>,
}

/// An I/O-IMC with concrete numeric rates (the classical model of the paper).
pub type IoImc = IoImcOf<f64>;

/// An I/O-IMC whose Markovian transitions carry symbolic [`RateForm`] rates.
pub type ParametricIoImc = IoImcOf<RateForm>;

impl<R: Rate> IoImcOf<R> {
    /// Assembles a model from raw parts, sorting the transition lists and building
    /// the per-state index.  The caller (the builder and the in-crate operations)
    /// must already have validated states, rates and the signature.
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the model's fields
    pub(crate) fn from_parts(
        name: String,
        signature: Signature,
        num_states: u32,
        initial: StateId,
        mut interactive: Vec<InteractiveTransition>,
        mut markovian: Vec<MarkovianTransitionOf<R>>,
        prop_names: Vec<String>,
        mut props: Vec<u64>,
    ) -> IoImcOf<R> {
        interactive.sort_by_key(|t| (t.from.0, t.label, t.to.0));
        interactive.dedup_by(|a, b| a.from == b.from && a.label == b.label && a.to == b.to);
        markovian.sort_by_key(|t| (t.from.0, t.to.0));
        props.resize(num_states as usize, 0);

        let mut interactive_index = vec![0u32; num_states as usize + 1];
        for t in &interactive {
            interactive_index[t.from.index() + 1] += 1;
        }
        for i in 1..interactive_index.len() {
            interactive_index[i] += interactive_index[i - 1];
        }
        let mut markovian_index = vec![0u32; num_states as usize + 1];
        for t in &markovian {
            markovian_index[t.from.index() + 1] += 1;
        }
        for i in 1..markovian_index.len() {
            markovian_index[i] += markovian_index[i - 1];
        }

        IoImcOf {
            name,
            signature,
            num_states,
            initial,
            interactive,
            markovian,
            prop_names,
            props,
            interactive_index,
            markovian_index,
        }
    }

    /// The human-readable name of the model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model (useful after composition for progress reporting).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The action signature of the model.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states as usize
    }

    /// Number of interactive plus Markovian transitions.
    pub fn num_transitions(&self) -> usize {
        self.interactive.len() + self.markovian.len()
    }

    /// Number of interactive transitions.
    pub fn num_interactive(&self) -> usize {
        self.interactive.len()
    }

    /// Number of Markovian transitions.
    pub fn num_markovian(&self) -> usize {
        self.markovian.len()
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.num_states).map(StateId)
    }

    /// All interactive transitions, sorted by source state.
    pub fn interactive(&self) -> &[InteractiveTransition] {
        &self.interactive
    }

    /// All Markovian transitions, sorted by source state.
    pub fn markovian(&self) -> &[MarkovianTransitionOf<R>] {
        &self.markovian
    }

    /// Interactive transitions leaving `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this model.
    pub fn interactive_from(&self, state: StateId) -> &[InteractiveTransition] {
        let lo = self.interactive_index[state.index()] as usize;
        let hi = self.interactive_index[state.index() + 1] as usize;
        &self.interactive[lo..hi]
    }

    /// Markovian transitions leaving `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this model.
    pub fn markovian_from(&self, state: StateId) -> &[MarkovianTransitionOf<R>] {
        let lo = self.markovian_index[state.index()] as usize;
        let hi = self.markovian_index[state.index() + 1] as usize;
        &self.markovian[lo..hi]
    }

    /// Total exit rate of `state` (sum of its Markovian transition rates).
    pub fn exit_rate(&self, state: StateId) -> R {
        let mut total = R::zero();
        for t in self.markovian_from(state) {
            total.add_assign(&t.rate);
        }
        total
    }

    /// Returns `true` if `state` has an outgoing output or internal transition.
    ///
    /// Under the maximal-progress assumption no time can pass in such a state, so
    /// its Markovian transitions can never fire.
    pub fn is_urgent(&self, state: StateId) -> bool {
        self.interactive_from(state)
            .iter()
            .any(|t| t.label.is_immediate())
    }

    /// Returns `true` if `state` has no outgoing internal transition (the classical
    /// IMC notion of stability).
    pub fn is_stable(&self, state: StateId) -> bool {
        !self
            .interactive_from(state)
            .iter()
            .any(|t| t.label.is_internal())
    }

    /// Names of the atomic propositions of this model, in [`PropId`] order.
    pub fn prop_names(&self) -> &[String] {
        &self.prop_names
    }

    /// Looks up a proposition by name.
    pub fn prop(&self, name: &str) -> Option<PropId> {
        self.prop_names
            .iter()
            .position(|p| p == name)
            .map(|i| PropId(i as u8))
    }

    /// The raw proposition bitmask of `state`.
    pub fn prop_mask(&self, state: StateId) -> u64 {
        self.props[state.index()]
    }

    /// Returns `true` if `state` is labelled with `prop`.
    pub fn has_prop(&self, state: StateId, prop: PropId) -> bool {
        self.props[state.index()] & (1u64 << prop.0) != 0
    }

    /// All states labelled with `prop`.
    pub fn states_with_prop(&self, prop: PropId) -> Vec<StateId> {
        self.states().filter(|&s| self.has_prop(s, prop)).collect()
    }

    /// Checks internal consistency: state ids in range, positive finite rates,
    /// transition labels consistent with the signature, proposition vector length.
    ///
    /// Models produced by the builder and the in-crate operations always pass; this
    /// is exposed for debugging and for property-based tests.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        self.signature.validate()?;
        let check_state = |s: StateId| -> Result<()> {
            if s.0 >= self.num_states {
                Err(Error::UnknownState {
                    state: s.0,
                    num_states: self.num_states,
                })
            } else {
                Ok(())
            }
        };
        check_state(self.initial)?;
        for t in &self.interactive {
            check_state(t.from)?;
            check_state(t.to)?;
            let ok = match t.label {
                Label::Input(a) => self.signature.is_input(a),
                Label::Output(a) => self.signature.is_output(a),
                Label::Internal(a) => self.signature.is_internal(a),
            };
            if !ok {
                return Err(Error::ConflictingSignature {
                    action: t.label.action(),
                });
            }
        }
        for t in &self.markovian {
            check_state(t.from)?;
            check_state(t.to)?;
            if !t.rate.is_valid() {
                return Err(Error::InvalidRate {
                    rate: t.rate.to_string(),
                });
            }
        }
        if self.props.len() != self.num_states as usize {
            return Err(Error::UnknownState {
                state: self.props.len() as u32,
                num_states: self.num_states,
            });
        }
        Ok(())
    }

    /// Restricts the model to the states reachable from the initial state,
    /// renumbering states densely.  Transitions from unreachable states are
    /// dropped.
    pub fn restrict_to_reachable(&self) -> IoImcOf<R> {
        let n = self.num_states as usize;
        let mut reachable = vec![false; n];
        let mut stack = vec![self.initial];
        reachable[self.initial.index()] = true;
        while let Some(s) = stack.pop() {
            for t in self.interactive_from(s) {
                if !reachable[t.to.index()] {
                    reachable[t.to.index()] = true;
                    stack.push(t.to);
                }
            }
            for t in self.markovian_from(s) {
                if !reachable[t.to.index()] {
                    reachable[t.to.index()] = true;
                    stack.push(t.to);
                }
            }
        }
        let mut remap = vec![u32::MAX; n];
        let mut next = 0u32;
        for (i, &r) in reachable.iter().enumerate() {
            if r {
                remap[i] = next;
                next += 1;
            }
        }
        let interactive = self
            .interactive
            .iter()
            .filter(|t| reachable[t.from.index()] && reachable[t.to.index()])
            .map(|t| InteractiveTransition {
                from: StateId(remap[t.from.index()]),
                label: t.label,
                to: StateId(remap[t.to.index()]),
            })
            .collect();
        let markovian = self
            .markovian
            .iter()
            .filter(|t| reachable[t.from.index()] && reachable[t.to.index()])
            .map(|t| MarkovianTransitionOf {
                from: StateId(remap[t.from.index()]),
                rate: t.rate.clone(),
                to: StateId(remap[t.to.index()]),
            })
            .collect();
        let props = (0..n)
            .filter(|&i| reachable[i])
            .map(|i| self.props[i])
            .collect();
        IoImcOf::from_parts(
            self.name.clone(),
            self.signature.clone(),
            next,
            StateId(remap[self.initial.index()]),
            interactive,
            markovian,
            self.prop_names.clone(),
            props,
        )
    }

    /// Maps every Markovian rate through `f`, keeping states, interactive
    /// transitions, signature and propositions unchanged.
    ///
    /// This is how a parametric model is *instantiated*: evaluating each
    /// [`RateForm`] against a valuation yields the numeric model for that rate
    /// assignment — without re-running composition or aggregation.  (It also
    /// lifts rate-free models, such as gate I/O-IMCs, between rate types.)
    pub fn map_rates<R2: Rate>(&self, mut f: impl FnMut(&R) -> R2) -> IoImcOf<R2> {
        IoImcOf {
            name: self.name.clone(),
            signature: self.signature.clone(),
            num_states: self.num_states,
            initial: self.initial,
            interactive: self.interactive.clone(),
            markovian: self
                .markovian
                .iter()
                .map(|t| MarkovianTransitionOf {
                    from: t.from,
                    rate: f(&t.rate),
                    to: t.to,
                })
                .collect(),
            prop_names: self.prop_names.clone(),
            props: self.props.clone(),
            interactive_index: self.interactive_index.clone(),
            markovian_index: self.markovian_index.clone(),
        }
    }
}

impl<R: Rate> fmt::Display for IoImcOf<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "I/O-IMC '{}': {} states, {} interactive + {} Markovian transitions",
            self.name,
            self.num_states,
            self.interactive.len(),
            self.markovian.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IoImcBuilder;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn sample() -> IoImc {
        let mut b = IoImcBuilder::new("sample");
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        let s3 = b.add_state();
        b.initial(s0);
        b.markovian(s0, 1.5, s1);
        b.input(s0, act("go"), s2);
        b.output(s1, act("done"), s3);
        b.internal(s2, act("step"), s3);
        let failed = b.prop("failed");
        b.set_prop(s3, failed);
        b.build().unwrap()
    }

    #[test]
    fn accessors_report_structure() {
        let m = sample();
        assert_eq!(m.num_states(), 4);
        assert_eq!(m.num_interactive(), 3);
        assert_eq!(m.num_markovian(), 1);
        assert_eq!(m.num_transitions(), 4);
        assert_eq!(m.initial(), StateId::new(0));
        assert_eq!(m.name(), "sample");
        assert!(m.validate().is_ok());
    }

    #[test]
    fn per_state_indices_partition_transitions() {
        let m = sample();
        let total: usize = m.states().map(|s| m.interactive_from(s).len()).sum();
        assert_eq!(total, m.num_interactive());
        let total_m: usize = m.states().map(|s| m.markovian_from(s).len()).sum();
        assert_eq!(total_m, m.num_markovian());
        assert_eq!(m.interactive_from(StateId::new(1)).len(), 1);
        assert_eq!(m.markovian_from(StateId::new(0)).len(), 1);
        assert!((m.exit_rate(StateId::new(0)) - 1.5).abs() < 1e-12);
        assert_eq!(m.exit_rate(StateId::new(3)), 0.0);
    }

    #[test]
    fn urgency_and_stability() {
        let m = sample();
        // s0 has only a Markovian and an input transition: not urgent, stable.
        assert!(!m.is_urgent(StateId::new(0)));
        assert!(m.is_stable(StateId::new(0)));
        // s1 has an output: urgent but stable (no internal).
        assert!(m.is_urgent(StateId::new(1)));
        assert!(m.is_stable(StateId::new(1)));
        // s2 has an internal transition: urgent and unstable.
        assert!(m.is_urgent(StateId::new(2)));
        assert!(!m.is_stable(StateId::new(2)));
    }

    #[test]
    fn props_round_trip() {
        let m = sample();
        let failed = m.prop("failed").unwrap();
        assert!(m.has_prop(StateId::new(3), failed));
        assert!(!m.has_prop(StateId::new(0), failed));
        assert_eq!(m.states_with_prop(failed), vec![StateId::new(3)]);
        assert!(m.prop("nonexistent").is_none());
        assert_eq!(m.prop_names(), &["failed".to_string()]);
    }

    #[test]
    fn labels_classify_and_display() {
        let a = act("sig");
        assert!(Label::Output(a).is_immediate());
        assert!(Label::Internal(a).is_immediate());
        assert!(!Label::Input(a).is_immediate());
        assert!(Label::Input(a).is_input());
        assert!(Label::Output(a).is_output());
        assert!(Label::Internal(a).is_internal());
        assert_eq!(Label::Input(a).to_string(), "sig?");
        assert_eq!(Label::Output(a).to_string(), "sig!");
        assert_eq!(Label::Internal(a).to_string(), "sig;");
        assert_eq!(Label::Output(a).action(), a);
    }

    #[test]
    fn restrict_to_reachable_drops_orphans() {
        let mut b = IoImcBuilder::new("orphans");
        let s0 = b.add_state();
        let s1 = b.add_state();
        let _orphan = b.add_state();
        b.initial(s0);
        b.markovian(s0, 1.0, s1);
        let m = b.build().unwrap();
        assert_eq!(m.num_states(), 3);
        let trimmed = m.restrict_to_reachable();
        assert_eq!(trimmed.num_states(), 2);
        assert_eq!(trimmed.num_markovian(), 1);
        assert!(trimmed.validate().is_ok());
    }

    #[test]
    fn display_mentions_counts() {
        let m = sample();
        let text = m.to_string();
        assert!(text.contains("4 states"));
        assert!(text.contains("sample"));
    }

    #[test]
    fn state_id_helpers() {
        let s = StateId::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s.to_string(), "s7");
    }
}
