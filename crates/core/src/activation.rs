//! Static activation analysis.
//!
//! Spare management is the subtlest part of the DFT semantics (Section 6.1 of the
//! paper).  A component that serves as a spare starts in *dormant* mode and only
//! switches to *active* mode when a spare gate claims it; the claim is announced
//! with an activation signal so that (a) the spare itself speeds up to its active
//! failure rate and (b) contending spare gates learn that the spare is taken.
//! Ordinary gates are "activation transparent": a sub-tree used as a spare is
//! activated as a whole, which means its basic events listen to the activation
//! signal of the sub-tree's root.  Nested spare gates are the exception — they pass
//! activation only to the input they are currently using.
//!
//! This module computes, once and for all, for every element:
//!
//! * whether it is **always active** (it lives outside every spare module, so it is
//!   active from time zero and needs no activation machinery at all), or
//! * which **activation root** it belongs to: the spare-module root whose
//!   activation signal `a_R` it listens to.
//!
//! It also computes which spare gates emit a *claim* signal `a_{X,G}` for which of
//! their inputs, which is exactly the information the spare-gate generator and the
//! activation auxiliaries need.

use crate::{Error, Result};
use dft::{Dft, ElementId, GateKind};
use std::collections::BTreeSet;

/// How an element gets activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActivationMode {
    /// The element is active from the start and needs no activation signal.
    AlwaysActive,
    /// The element is dormant until the activation signal of the given
    /// spare-module root is emitted.
    Dynamic {
        /// The spare-module root whose activation signal `a_root` the element
        /// listens to.
        root: ElementId,
    },
}

/// The result of the activation analysis.
#[derive(Debug, Clone)]
pub struct ActivationAnalysis {
    modes: Vec<ActivationMode>,
    /// `claiming_gates[x]` lists the spare (or SEQ) gates that emit the claim
    /// signal `a_{x,G}` for element `x`.
    claiming_gates: Vec<Vec<ElementId>>,
}

fn is_spare_like(dft: &Dft, gate: ElementId) -> bool {
    matches!(
        dft.element(gate).as_gate().map(|g| g.kind),
        Some(GateKind::Spare) | Some(GateKind::Seq)
    )
}

impl ActivationAnalysis {
    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for configurations whose activation semantics
    /// is ambiguous (an element used as the primary of one spare gate and a spare
    /// of another, or an element shared between two distinct spare modules).
    pub fn analyze(dft: &Dft) -> Result<ActivationAnalysis> {
        let n = dft.num_elements();

        // Which elements are non-primary inputs ("spare entries") of a spare-like
        // gate, and which are primaries of one.
        let mut spare_entry = vec![false; n];
        let mut primary_of: Vec<Option<ElementId>> = vec![None; n];
        for gate in dft.elements() {
            if !is_spare_like(dft, gate) {
                continue;
            }
            let inputs = dft.element(gate).inputs();
            primary_of[inputs[0].index()] = Some(gate);
            for &spare in &inputs[1..] {
                spare_entry[spare.index()] = true;
            }
        }
        for x in dft.elements() {
            if spare_entry[x.index()] && primary_of[x.index()].is_some() {
                return Err(Error::Unsupported {
                    message: format!(
                        "element '{}' is the primary of one spare gate and a spare of another; \
                         its activation would be ambiguous",
                        dft.name(x)
                    ),
                });
            }
        }

        // Propagate modes from parents to children: process gates before their
        // inputs (reverse topological order).
        let mut modes: Vec<Option<ActivationMode>> = vec![None; n];
        let mut order = dft.topological_order();
        order.reverse();
        for &x in &order {
            let xi = x.index();
            if spare_entry[xi] {
                modes[xi] = Some(ActivationMode::Dynamic { root: x });
                continue;
            }
            if let Some(gate) = primary_of[xi] {
                // The primary is activated together with its gate.
                let gate_mode = modes[gate.index()].expect("parents processed first");
                modes[xi] = Some(match gate_mode {
                    ActivationMode::AlwaysActive => ActivationMode::AlwaysActive,
                    ActivationMode::Dynamic { .. } => ActivationMode::Dynamic { root: x },
                });
                continue;
            }
            // Ordinary element: inherit from non-FDEP parents.
            let relevant_parents: Vec<ElementId> = dft
                .parents(x)
                .iter()
                .copied()
                .filter(|&p| {
                    !matches!(
                        dft.element(p).as_gate().map(|g| g.kind),
                        Some(GateKind::Fdep)
                    )
                })
                .collect();
            if relevant_parents.is_empty() {
                modes[xi] = Some(ActivationMode::AlwaysActive);
                continue;
            }
            let parent_modes: BTreeSet<ActivationMode> = relevant_parents
                .iter()
                .map(|&p| {
                    // A parent that is a spare-like gate would have classified `x`
                    // as primary or spare entry above, so parents here are
                    // activation-transparent gates.
                    modes[p.index()].expect("parents processed first")
                })
                .collect();
            if parent_modes.contains(&ActivationMode::AlwaysActive) {
                modes[xi] = Some(ActivationMode::AlwaysActive);
                continue;
            }
            let roots: BTreeSet<ElementId> = parent_modes
                .iter()
                .map(|m| match m {
                    ActivationMode::Dynamic { root } => *root,
                    ActivationMode::AlwaysActive => unreachable!(),
                })
                .collect();
            if roots.len() > 1 {
                return Err(Error::Unsupported {
                    message: format!(
                        "element '{}' belongs to two different spare modules; \
                         its activation would be ambiguous",
                        dft.name(x)
                    ),
                });
            }
            modes[xi] = Some(ActivationMode::Dynamic {
                root: *roots.iter().next().expect("nonempty"),
            });
        }
        let modes: Vec<ActivationMode> = modes
            .into_iter()
            .map(|m| m.expect("all elements processed"))
            .collect();

        // Which gates claim which inputs: every spare-like gate claims its spares;
        // it claims its primary only if the gate itself is dormant-capable.
        let mut claiming_gates: Vec<Vec<ElementId>> = vec![Vec::new(); n];
        for gate in dft.elements() {
            if !is_spare_like(dft, gate) {
                continue;
            }
            let inputs = dft.element(gate).inputs();
            for &spare in &inputs[1..] {
                claiming_gates[spare.index()].push(gate);
            }
            if matches!(modes[gate.index()], ActivationMode::Dynamic { .. }) {
                claiming_gates[inputs[0].index()].push(gate);
            }
        }

        Ok(ActivationAnalysis {
            modes,
            claiming_gates,
        })
    }

    /// The activation mode of `element`.
    pub fn mode(&self, element: ElementId) -> ActivationMode {
        self.modes[element.index()]
    }

    /// Returns `true` if `element` is active from the start.
    pub fn is_always_active(&self, element: ElementId) -> bool {
        self.mode(element) == ActivationMode::AlwaysActive
    }

    /// The spare-module root whose activation signal `element` listens to, if any.
    pub fn activation_root(&self, element: ElementId) -> Option<ElementId> {
        match self.mode(element) {
            ActivationMode::AlwaysActive => None,
            ActivationMode::Dynamic { root } => Some(root),
        }
    }

    /// The spare (or SEQ) gates that emit a claim signal `a_{element,G}`.
    pub fn claiming_gates(&self, element: ElementId) -> &[ElementId] {
        &self.claiming_gates[element.index()]
    }

    /// Elements that need an activation auxiliary: dynamic spare-module roots.
    pub fn activation_roots(&self, dft: &Dft) -> Vec<ElementId> {
        dft.elements()
            .filter(|&x| self.activation_root(x) == Some(x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    /// CAS-like pump unit: two spare gates sharing one cold spare.
    fn shared_spare() -> Dft {
        let mut b = DftBuilder::new();
        let pa = b.basic_event("PA", 1.0, Dormancy::Hot).unwrap();
        let pb = b.basic_event("PB", 1.0, Dormancy::Hot).unwrap();
        let ps = b.basic_event("PS", 1.0, Dormancy::Cold).unwrap();
        let ga = b.spare_gate("Pump_A", &[pa, ps]).unwrap();
        let gb = b.spare_gate("Pump_B", &[pb, ps]).unwrap();
        let top = b.and_gate("Pump_unit", &[ga, gb]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn top_level_elements_are_always_active() {
        let dft = shared_spare();
        let analysis = ActivationAnalysis::analyze(&dft).unwrap();
        for name in ["PA", "PB", "Pump_A", "Pump_B", "Pump_unit"] {
            let id = dft.by_name(name).unwrap();
            assert!(
                analysis.is_always_active(id),
                "{name} should be always active"
            );
        }
    }

    #[test]
    fn shared_spare_is_claimed_by_both_gates() {
        let dft = shared_spare();
        let analysis = ActivationAnalysis::analyze(&dft).unwrap();
        let ps = dft.by_name("PS").unwrap();
        assert_eq!(analysis.mode(ps), ActivationMode::Dynamic { root: ps });
        let claiming: Vec<&str> = analysis
            .claiming_gates(ps)
            .iter()
            .map(|&g| dft.name(g))
            .collect();
        assert_eq!(claiming, vec!["Pump_A", "Pump_B"]);
        assert_eq!(analysis.activation_roots(&dft), vec![ps]);
    }

    #[test]
    fn primaries_of_always_active_gates_are_not_claimed() {
        let dft = shared_spare();
        let analysis = ActivationAnalysis::analyze(&dft).unwrap();
        let pa = dft.by_name("PA").unwrap();
        assert!(analysis.claiming_gates(pa).is_empty());
    }

    /// Figure 10(b): a spare gate whose primary and spare are themselves spare
    /// gates over basic events.
    fn nested_spares() -> Dft {
        let mut b = DftBuilder::new();
        let a = b.basic_event("A", 1.0, Dormancy::Warm(0.5)).unwrap();
        let bb = b.basic_event("B", 1.0, Dormancy::Warm(0.5)).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Warm(0.5)).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Warm(0.5)).unwrap();
        let primary = b.spare_gate("primary", &[a, bb]).unwrap();
        let spare = b.spare_gate("spare", &[c, d]).unwrap();
        let top = b.spare_gate("system", &[primary, spare]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn nested_spare_gates_form_their_own_activation_scopes() {
        let dft = nested_spares();
        let analysis = ActivationAnalysis::analyze(&dft).unwrap();
        let a = dft.by_name("A").unwrap();
        let bb = dft.by_name("B").unwrap();
        let c = dft.by_name("C").unwrap();
        let d = dft.by_name("D").unwrap();
        let primary = dft.by_name("primary").unwrap();
        let spare = dft.by_name("spare").unwrap();
        let system = dft.by_name("system").unwrap();

        // The top spare gate and its primary module are active from the start.
        assert!(analysis.is_always_active(system));
        assert!(analysis.is_always_active(primary));
        // The primary A of the (active) primary module is active; its spare B is
        // activated by the module itself.
        assert!(analysis.is_always_active(a));
        assert_eq!(analysis.mode(bb), ActivationMode::Dynamic { root: bb });
        // The spare module and its components are dormant: C (primary of 'spare')
        // is activated when 'spare' is activated, D when 'spare' claims it.
        assert_eq!(
            analysis.mode(spare),
            ActivationMode::Dynamic { root: spare }
        );
        assert_eq!(analysis.mode(c), ActivationMode::Dynamic { root: c });
        assert_eq!(analysis.mode(d), ActivationMode::Dynamic { root: d });
        // 'spare' claims its primary C because 'spare' itself is dormant-capable.
        let claiming_c: Vec<&str> = analysis
            .claiming_gates(c)
            .iter()
            .map(|&g| dft.name(g))
            .collect();
        assert_eq!(claiming_c, vec!["spare"]);
    }

    /// An AND sub-tree used as a spare (Figure 10(a)): its basic events listen to
    /// the sub-tree root's activation signal.
    #[test]
    fn and_subtree_as_spare_shares_one_activation_root() {
        let mut b = DftBuilder::new();
        let a = b.basic_event("A", 1.0, Dormancy::Hot).unwrap();
        let bb = b.basic_event("B", 1.0, Dormancy::Hot).unwrap();
        let c = b.basic_event("C", 1.0, Dormancy::Warm(0.2)).unwrap();
        let d = b.basic_event("D", 1.0, Dormancy::Warm(0.2)).unwrap();
        let primary = b.and_gate("primary", &[a, bb]).unwrap();
        let spare = b.and_gate("spare", &[c, d]).unwrap();
        let top = b.spare_gate("system", &[primary, spare]).unwrap();
        let dft = b.build(top).unwrap();
        let analysis = ActivationAnalysis::analyze(&dft).unwrap();

        let spare_id = dft.by_name("spare").unwrap();
        let c_id = dft.by_name("C").unwrap();
        let d_id = dft.by_name("D").unwrap();
        // Both C and D listen to the module root's activation signal (the AND gate
        // is activation transparent).
        assert_eq!(
            analysis.mode(c_id),
            ActivationMode::Dynamic { root: spare_id }
        );
        assert_eq!(
            analysis.mode(d_id),
            ActivationMode::Dynamic { root: spare_id }
        );
        assert_eq!(analysis.activation_roots(&dft), vec![spare_id]);
    }

    #[test]
    fn fdep_parents_do_not_provide_activation_context() {
        let mut b = DftBuilder::new();
        let t = b.basic_event("T", 1.0, Dormancy::Hot).unwrap();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let _fdep = b.fdep_gate("F", t, &[x]).unwrap();
        let top = b.or_gate("Top", &[x, t]).unwrap();
        let dft = b.build(top).unwrap();
        let analysis = ActivationAnalysis::analyze(&dft).unwrap();
        assert!(analysis.is_always_active(dft.by_name("X").unwrap()));
    }

    #[test]
    fn primary_that_is_also_a_spare_is_rejected() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("Y", 1.0, Dormancy::Hot).unwrap();
        let z = b.basic_event("Z", 1.0, Dormancy::Cold).unwrap();
        let g1 = b.spare_gate("G1", &[x, z]).unwrap();
        let g2 = b.spare_gate("G2", &[z, y]).unwrap();
        let top = b.and_gate("Top", &[g1, g2]).unwrap();
        // Z is a spare of G1 and the primary of G2.  The dft crate may already
        // reject this sharing pattern at build time, which is fine too.
        if let Ok(dft) = b.build(top) {
            assert!(matches!(
                ActivationAnalysis::analyze(&dft),
                Err(Error::Unsupported { .. })
            ));
        }
    }
}
