//! Typed queries and their unified results.
//!
//! An [`Analyzer`](crate::engine::Analyzer) pays the model-construction cost once
//! and then answers any number of [`Measure`] queries against the cached model.
//! Every answer is a [`MeasureResult`]: a sequence of [`MeasurePoint`]s (one for a
//! scalar measure, one per mission time for a curve), each carrying the point
//! value, the CTMDP scheduler bounds and a non-determinism flag, so callers handle
//! deterministic CTMCs and non-deterministic CTMDPs uniformly.

/// A measure to evaluate on the model cached by an
/// [`Analyzer`](crate::engine::Analyzer).
///
/// `Measure` owns its data (curve times live in a `Vec<f64>`), so measures are
/// `Send + 'static`: they can be stored in job queues, shipped across threads and
/// batched by the [`AnalysisService`](crate::service::AnalysisService) without
/// borrowing from the submitting scope.
#[derive(Debug, Clone, PartialEq)]
pub enum Measure {
    /// Probability that the top event has occurred by the given mission time.
    Unreliability(f64),
    /// Unreliability at every listed mission time, evaluated in a *single*
    /// uniformisation / value-iteration pass (the per-point cost of a sweep is a
    /// few vector updates, not a fresh analysis).  The time list must be
    /// non-empty; an empty curve is rejected with
    /// [`Error::EmptyCurve`](crate::Error::EmptyCurve) at query time.
    UnreliabilityCurve(Vec<f64>),
    /// Long-run probability that the system is down (repairable models only).
    Unavailability,
    /// Mean time to failure: the expected time until the top event first occurs.
    Mttf,
}

impl Measure {
    /// Convenience constructor for [`Measure::UnreliabilityCurve`] from any
    /// borrowed or owned time list.
    pub fn curve(times: impl Into<Vec<f64>>) -> Measure {
        Measure::UnreliabilityCurve(times.into())
    }
}

/// The value of a measure at one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurePoint {
    time: Option<f64>,
    point: Option<f64>,
    bounds: (f64, f64),
    nondeterministic: bool,
}

impl MeasurePoint {
    /// A point of an exactly valued (deterministic) measure.
    pub(crate) fn exact(time: Option<f64>, value: f64) -> MeasurePoint {
        MeasurePoint {
            time,
            point: Some(value),
            bounds: (value, value),
            nondeterministic: false,
        }
    }

    /// A point carrying CTMDP scheduler bounds; `point` is `Some` when the model
    /// turned out deterministic despite the CTMDP analysis.
    pub(crate) fn bounded(
        time: Option<f64>,
        point: Option<f64>,
        bounds: (f64, f64),
    ) -> MeasurePoint {
        MeasurePoint {
            time,
            point,
            bounds,
            nondeterministic: point.is_none(),
        }
    }

    /// The mission time this point refers to (`None` for time-independent measures
    /// such as unavailability and MTTF).
    pub fn time(&self) -> Option<f64> {
        self.time
    }

    /// The measure value.
    ///
    /// For a deterministic model this is the exact value; for a non-deterministic
    /// model (CTMDP) the pessimistic upper bound is returned — use
    /// [`bounds`](Self::bounds) to see the full interval.
    pub fn value(&self) -> f64 {
        self.point.unwrap_or(self.bounds.1)
    }

    /// The exact value, if the model is deterministic.
    pub fn point(&self) -> Option<f64> {
        self.point
    }

    /// Lower and upper bounds on the measure (equal for deterministic models, up
    /// to numerical truncation error).
    pub fn bounds(&self) -> (f64, f64) {
        self.bounds
    }

    /// Returns `true` if the final model contained immediate non-determinism, so
    /// only the scheduler bounds are meaningful.
    pub fn is_nondeterministic(&self) -> bool {
        self.nondeterministic
    }
}

/// The unified result of a [`Measure`] query.
///
/// Scalar measures produce exactly one [`MeasurePoint`];
/// [`Measure::UnreliabilityCurve`] produces one per requested mission time, in the
/// same order as the request.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureResult {
    points: Vec<MeasurePoint>,
}

impl MeasureResult {
    pub(crate) fn new(points: Vec<MeasurePoint>) -> MeasureResult {
        MeasureResult { points }
    }

    /// The value of the (first) evaluation point — the natural accessor for the
    /// scalar measures.  See [`MeasurePoint::value`] for the non-determinism
    /// convention.
    ///
    /// Every result produced by [`Analyzer::query`](crate::engine::Analyzer::query)
    /// has at least one point — empty curve queries are rejected with
    /// [`Error::EmptyCurve`](crate::Error::EmptyCurve) before a result is ever
    /// built — so this accessor cannot panic on engine output.
    ///
    /// # Panics
    ///
    /// Panics on a hand-constructed empty result.
    pub fn value(&self) -> f64 {
        self.points
            .first()
            .expect("measure result has at least one point")
            .value()
    }

    /// The bounds of the (first) evaluation point.
    ///
    /// # Panics
    ///
    /// Panics on a hand-constructed empty result; engine output always carries at
    /// least one point (see [`value`](Self::value)).
    pub fn bounds(&self) -> (f64, f64) {
        self.points
            .first()
            .expect("measure result has at least one point")
            .bounds()
    }

    /// Returns `true` if any evaluation point is only bounded, not exactly valued.
    pub fn is_nondeterministic(&self) -> bool {
        self.points.iter().any(MeasurePoint::is_nondeterministic)
    }

    /// All evaluation points, in query order.
    pub fn points(&self) -> &[MeasurePoint] {
        &self.points
    }

    /// The values of all evaluation points, in query order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(MeasurePoint::value)
    }

    /// Number of evaluation points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for an empty result (a curve query over an empty slice).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_points_have_tight_bounds() {
        let p = MeasurePoint::exact(Some(1.0), 0.25);
        assert_eq!(p.time(), Some(1.0));
        assert_eq!(p.value(), 0.25);
        assert_eq!(p.point(), Some(0.25));
        assert_eq!(p.bounds(), (0.25, 0.25));
        assert!(!p.is_nondeterministic());
    }

    #[test]
    fn bounded_points_report_the_pessimistic_value() {
        let p = MeasurePoint::bounded(None, None, (0.1, 0.4));
        assert_eq!(p.value(), 0.4);
        assert_eq!(p.point(), None);
        assert!(p.is_nondeterministic());
        let r = MeasureResult::new(vec![MeasurePoint::exact(None, 0.5), p]);
        assert!(r.is_nondeterministic());
        assert_eq!(r.value(), 0.5);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.values().collect::<Vec<_>>(), vec![0.5, 0.4]);
    }
}
