//! Completion handles for submitted work, and the shared state a sweep's
//! tasks coordinate through.
//!
//! [`AnalysisService::submit`](super::AnalysisService::submit) and
//! [`submit_sweep`](super::AnalysisService::submit_sweep) enqueue and return
//! immediately; the caller keeps a handle whose [`wait`](JobHandle::wait)
//! blocks on an [`mpsc`] channel until the pool delivers the report (or
//! [`try_result`](JobHandle::try_result) polls without blocking).  Handles are
//! independent of the service's lifetime: dropping the service drains the
//! queue first, so every outstanding handle still receives its report.

use super::{JobReport, ServiceCore, SweepPointReport, SweepReport, SweepSpec, SweepStats};
use crate::analysis::AnalysisOptions;
use crate::engine::ParametricAnalyzer;
use crate::parametric::Valuation;
use crate::query::Measure;
use crate::{Error, Result};
use dft::Dft;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The channel-backed core both public handles share: a report arrives exactly
/// once; `received` keeps it across `try_result` calls so a later `wait`
/// still returns it.
#[derive(Debug)]
struct Handle<T> {
    rx: mpsc::Receiver<T>,
    received: Option<T>,
}

impl<T> Handle<T> {
    fn new(rx: mpsc::Receiver<T>) -> Handle<T> {
        Handle { rx, received: None }
    }

    /// A handle whose result is already available (no queued work behind it).
    fn ready(value: T) -> Handle<T> {
        let (tx, rx) = mpsc::channel();
        drop(tx);
        Handle {
            rx,
            received: Some(value),
        }
    }

    fn wait(mut self) -> T {
        match self.received.take() {
            Some(value) => value,
            None => self
                .rx
                .recv()
                .expect("the worker pool delivers every report before shutting down"),
        }
    }

    fn try_result(&mut self) -> Option<&T> {
        if self.received.is_none() {
            match self.rx.try_recv() {
                Ok(value) => self.received = Some(value),
                Err(mpsc::TryRecvError::Empty) => {}
                // The worker died without delivering (it panicked): surface
                // the failure like wait() does, instead of letting a poller
                // spin on "not ready yet" forever.
                Err(mpsc::TryRecvError::Disconnected) => {
                    panic!("the worker pool delivers every report before shutting down")
                }
            }
        }
        self.received.as_ref()
    }
}

/// The completion handle of one submitted [`AnalysisJob`](super::AnalysisJob).
///
/// Returned by [`AnalysisService::submit`](super::AnalysisService::submit);
/// the job runs on the service's persistent worker pool while the submitting
/// thread is free to keep submitting (or do anything else).
#[derive(Debug)]
pub struct JobHandle {
    inner: Handle<JobReport>,
}

impl JobHandle {
    pub(super) fn new(rx: mpsc::Receiver<JobReport>) -> JobHandle {
        JobHandle {
            inner: Handle::new(rx),
        }
    }

    /// Blocks until the job has run and returns its report.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the job panicked (the report channel is
    /// closed without a report — the pool itself never drops a job).
    pub fn wait(self) -> JobReport {
        self.inner.wait()
    }

    /// Returns the report if the job has already finished, without blocking.
    /// A report observed here is kept, so a later [`wait`](Self::wait) (or
    /// repeated `try_result` calls) still return it.
    ///
    /// # Panics
    ///
    /// Panics if the worker executing the job panicked (same condition as
    /// [`wait`](Self::wait)) — a dead job must not look like "not ready yet"
    /// to a poller.
    pub fn try_result(&mut self) -> Option<&JobReport> {
        self.inner.try_result()
    }
}

/// The completion handle of one submitted [`SweepJob`](super::SweepJob); see
/// [`JobHandle`] for the waiting contract.
#[derive(Debug)]
pub struct SweepHandle {
    inner: Handle<SweepReport>,
}

impl SweepHandle {
    pub(super) fn new(rx: mpsc::Receiver<SweepReport>) -> SweepHandle {
        SweepHandle {
            inner: Handle::new(rx),
        }
    }

    /// A handle for an empty sweep: the report is available immediately and no
    /// work was enqueued.
    pub(super) fn ready(report: SweepReport) -> SweepHandle {
        SweepHandle {
            inner: Handle::ready(report),
        }
    }

    /// Blocks until every valuation has run and returns the assembled report.
    ///
    /// # Panics
    ///
    /// Panics if a worker executing part of the sweep panicked.
    pub fn wait(self) -> SweepReport {
        self.inner.wait()
    }

    /// Returns the report if the whole sweep has already finished, without
    /// blocking; an observed report is kept for a later [`wait`](Self::wait).
    ///
    /// # Panics
    ///
    /// Panics if a worker executing part of the sweep panicked (same
    /// condition as [`wait`](Self::wait)).
    pub fn try_result(&mut self) -> Option<&SweepReport> {
        self.inner.try_result()
    }
}

/// The outcome of a sweep's head task: the shared parametric model (or its
/// deterministic error), whether it came out of the cache, and what the build
/// cost.
#[derive(Debug)]
struct ParametricOutcome {
    model: Result<Arc<ParametricAnalyzer>>,
    cache_hit: bool,
    build_time: Duration,
}

/// The state one sweep's tasks share: the head task stores the parametric
/// model and the valuations resolved from the [`SweepSpec`], every point task
/// fills its slot, and the *last* point to finish assembles the
/// [`SweepReport`] and sends it to the handle.
#[derive(Debug)]
pub(super) struct SweepState {
    dft: Dft,
    options: AnalysisOptions,
    measures: Vec<Measure>,
    spec: SweepSpec,
    structural: u64,
    /// Pool size at submission, reported in [`SweepStats::workers`].
    workers: usize,
    /// Submission time; the report's wall clock covers queueing too.
    started: Instant,
    parametric: OnceLock<ParametricOutcome>,
    /// The spec's concrete valuations, resolved by the head task (the
    /// symbolic forms need the built model's
    /// [`ParamTable`](crate::parametric::ParamTable)).  A resolution error
    /// lands in every point's report instead of aborting the sweep.
    resolved: OnceLock<Result<Vec<Valuation>>>,
    slots: Mutex<Vec<Option<SweepPointReport>>>,
    remaining: AtomicUsize,
    /// `Sender` is `Send` but not `Sync`; only the final point task ever uses
    /// it, so a mutex costs nothing.
    tx: Mutex<mpsc::Sender<SweepReport>>,
}

impl SweepState {
    pub(super) fn new(
        dft: Dft,
        options: AnalysisOptions,
        measures: Vec<Measure>,
        spec: SweepSpec,
        workers: usize,
        tx: mpsc::Sender<SweepReport>,
    ) -> SweepState {
        let structural = dft.structural_fingerprint();
        let points = spec.len();
        SweepState {
            dft,
            options,
            measures,
            spec,
            structural,
            workers,
            started: Instant::now(),
            parametric: OnceLock::new(),
            resolved: OnceLock::new(),
            slots: Mutex::new(vec![None; points]),
            remaining: AtomicUsize::new(points),
            tx: Mutex::new(tx),
        }
    }

    /// Number of sweep points (= point tasks to expand); fixed by the spec at
    /// submission time, before the model exists.
    pub(super) fn points(&self) -> usize {
        self.spec.len()
    }

    /// The head task: get-or-build the shared parametric model, then resolve
    /// the spec into concrete valuations against its parameter table.
    pub(super) fn build(&self, core: &ServiceCore) {
        let build_start = Instant::now();
        let (model, cache_hit) = core.parametric(self.structural, &self.dft, &self.options);
        let resolved = match &model {
            Ok(model) => self.spec.resolve(model.params()),
            // The model failed to build: every point will report the build
            // error, so the valuations are moot.  Table-free specs still
            // resolve (keeping the classic per-point fingerprints); symbolic
            // ones resolve to nothing and the points fall back to the build
            // error below.
            Err(_) => match &self.spec {
                SweepSpec::Valuations(valuations) => Ok(valuations.clone()),
                _ => Ok(Vec::new()),
            },
        };
        self.resolved
            .set(resolved)
            .expect("the sweep head task runs exactly once");
        let outcome = ParametricOutcome {
            model,
            cache_hit,
            build_time: build_start.elapsed(),
        };
        self.parametric
            .set(outcome)
            .expect("the sweep head task runs exactly once");
    }

    /// One point task: instantiate-or-fetch the valuation's session, answer
    /// the measures, and — when this was the last outstanding point —
    /// assemble and deliver the report.
    pub(super) fn run_point(&self, core: &ServiceCore, index: usize) {
        let outcome = self
            .parametric
            .get()
            .expect("the sweep head task expands the points only after building");
        let resolved = self
            .resolved
            .get()
            .expect("the sweep head task resolves the spec before any point runs");
        let report = match resolved {
            Err(e) => SweepPointReport {
                valuation_fingerprint: 0,
                cache_hit: false,
                results: Err(e.clone()),
                instantiate: Duration::ZERO,
                query: Duration::ZERO,
            },
            Ok(valuations) => match valuations.get(index) {
                Some(valuation) => core.run_sweep_point(
                    &outcome.model,
                    self.structural,
                    &self.options,
                    &self.measures,
                    valuation,
                ),
                // A symbolic spec with a failed model build resolved to no
                // valuations; surface the build error per point.
                None => SweepPointReport {
                    valuation_fingerprint: 0,
                    cache_hit: false,
                    results: Err(match &outcome.model {
                        Err(e) => e.clone(),
                        Ok(_) => Error::InvalidValuation {
                            message: "sweep point has no valuation".to_owned(),
                        },
                    }),
                    instantiate: Duration::ZERO,
                    query: Duration::ZERO,
                },
            },
        };
        self.slots.lock().expect("sweep slots")[index] = Some(report);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finish(outcome);
        }
    }

    fn finish(&self, outcome: &ParametricOutcome) {
        let points: Vec<SweepPointReport> = self
            .slots
            .lock()
            .expect("sweep slots")
            .iter_mut()
            .map(|slot| slot.take().expect("every point task filled its slot"))
            .collect();
        let mut stats = SweepStats {
            valuations: points.len(),
            parametric_cache_hit: outcome.cache_hit,
            // A parametric model freshly *loaded from the persistent store*
            // is an in-memory cache miss that still ran zero aggregations —
            // ask the model itself instead of inferring from the hit flag.
            aggregation_runs: match &outcome.model {
                Ok(model) if !outcome.cache_hit => model.aggregation_runs(),
                _ => 0,
            },
            workers: self.workers,
            build_time: outcome.build_time,
            wall_time: self.started.elapsed(),
            ..SweepStats::default()
        };
        for point in &points {
            if point.cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            stats.instantiate_time += point.instantiate;
            stats.query_time += point.query;
        }
        // The handle may have been dropped (fire-and-forget submission);
        // delivery failure is not an error.
        let _ = self
            .tx
            .lock()
            .expect("sweep sender")
            .send(SweepReport { points, stats });
    }
}
