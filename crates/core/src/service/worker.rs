//! The worker loop of the persistent pool.
//!
//! Each worker thread runs [`run`] until the queue shuts down and drains:
//! claim a task (blocking on the queue's condvar — never polling), execute it,
//! report completion so parked followers are released, repeat.

use super::queue::{JobQueue, Task};
use super::{CacheKey, ServiceCore};
use std::sync::Arc;

/// Reports a claim's completion on drop, so a task that *panics* still
/// releases its leadership — otherwise the key would stay in the queue's
/// `building` set forever and its parked followers (plus every worker waiting
/// on them, plus the service's `Drop`) would deadlock.
struct CompleteOnDrop<'a> {
    queue: &'a JobQueue,
    leader_of: Option<CacheKey>,
}

impl Drop for CompleteOnDrop<'_> {
    fn drop(&mut self) {
        self.queue.complete(self.leader_of);
    }
}

/// The body of one worker thread.
///
/// A panicking task must not kill the thread: the pool would silently shrink
/// (and with it gone entirely, later submissions would hang forever).  The
/// panic is contained to the task — its report channel drops unsent, so the
/// task's own handle panics in `wait`/`try_result` exactly as documented —
/// and the worker lives on to serve the next claim.  `AssertUnwindSafe` is
/// justified because every structure the task touches is either task-local
/// (consumed by the unwind) or lock-protected (a panic while holding a lock
/// poisons it, which surfaces as an explicit error rather than silent
/// corruption).
pub(super) fn run(core: &ServiceCore) {
    while let Some(claim) = core.queue.claim(|key| core.is_built(key)) {
        let _complete = CompleteOnDrop {
            queue: &core.queue,
            leader_of: claim.leader_of,
        };
        let task = claim.task;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(core, task)));
    }
}

/// Executes one claimed task.
fn execute(core: &ServiceCore, task: Task) {
    match task {
        Task::Job { job, key, tx } => {
            // The handle may have been dropped (fire-and-forget submission);
            // the job still ran and warmed the cache, so a closed channel is
            // not an error.
            let _ = tx.send(core.run_job(key, &job));
        }
        Task::SweepStart { state } => {
            state.build(core);
            let tasks: Vec<Task> = (0..state.points())
                .map(|index| Task::SweepPoint {
                    state: Arc::clone(&state),
                    index,
                })
                .collect();
            core.queue.push_many(tasks);
        }
        Task::SweepPoint { state, index } => {
            state.run_point(core, index);
        }
    }
}
