//! The portfolio front end: a thread-safe, cache-backed service over many
//! [`Analyzer`] sessions, drained by a persistent worker pool.
//!
//! The [`Analyzer`] exploits the paper's economics
//! *within* one tree: model construction is expensive, queries against the built
//! model are cheap.  Real workloads analyze whole portfolios of DFT variants —
//! fleets of similar systems, parameter studies, repeated submissions of the
//! same design — where many trees are structurally identical and should never
//! pay aggregation twice.  [`AnalysisService`] extends the same economics
//! *across* trees:
//!
//! * **Asynchronous submission** — [`submit`](AnalysisService::submit) and
//!   [`submit_sweep`](AnalysisService::submit_sweep) enqueue a job and return a
//!   handle immediately; [`JobHandle::wait`]/[`SweepHandle::wait`] block on a
//!   channel until the pool delivers the report, and `try_result` polls without
//!   blocking.  Any number of client threads can submit concurrently against
//!   one long-lived service while the pool drains continuously.
//! * **A persistent worker pool** — [`ServiceOptions::workers`] threads are
//!   spawned once (lazily, on the first submission) and coordinate through a
//!   Mutex+Condvar queue with timeout-free waits; see [`queue`](self).
//!   Dropping the service shuts the pool down deterministically: the queue
//!   drains, every outstanding handle receives its report, and the threads are
//!   joined.
//! * **Batching** — [`run_batch`](AnalysisService::run_batch) and
//!   [`run_sweep`](AnalysisService::run_sweep) are thin submit-then-wait
//!   wrappers over the queue, preserving the blocking portfolio API (and its
//!   result and accounting semantics) exactly.
//! * **Caching** — built sessions are shared through an LRU cache of
//!   `Arc<Analyzer>` keyed by [`Dft::fingerprint`] (plus the analysis method and
//!   epsilon).  A batch over N copies of one tree runs aggregation exactly
//!   once; the other N−1 jobs are cache hits that go straight to the query
//!   phase.
//! * **Persistence** — with [`ServiceOptions::store`] pointing at a shared
//!   directory, built models are also written to a cross-process
//!   [`ModelStore`]: a cache miss consults the
//!   store before aggregating (a restarted or neighbouring server's work
//!   becomes a disk read that reports zero aggregation runs), every fresh
//!   build is written back atomically before its report is delivered, and
//!   corrupt or stale entries are silently rebuilt.  Store problems never
//!   fail a job — a failed write-back just leaves the entry in-memory-only.
//! * **Exactly-once builds under concurrency** — each cache entry is an
//!   `Arc<OnceLock<…>>`: when two workers race for the same fingerprint, one
//!   builds while the other blocks on the lock and then shares the result,
//!   instead of building a duplicate model.  The queue additionally *parks*
//!   jobs whose model is being built by a leader and re-releases them when the
//!   build completes, so pool workers never idle inside that lock
//!   ([`BatchStats::build_waits`] stays 0 however the jobs interleave, short
//!   of an eviction racing a rebuild under a too-small cache capacity).
//! * **Determinism** — workers only share immutable `Arc<Analyzer>` sessions,
//!   so every job's results are bit-identical to what a sequential
//!   [`Analyzer`] run over the same tree would produce, whatever the worker
//!   count, submission order or job interleaving.
//!
//! # Example
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
//! use dft_core::{AnalysisOptions, Measure};
//!
//! fn variant(rate: f64) -> dft::Dft {
//!     let mut b = DftBuilder::new();
//!     let p = b.basic_event("P", rate, Dormancy::Hot).unwrap();
//!     let s = b.basic_event("S", rate, Dormancy::Cold).unwrap();
//!     let top = b.spare_gate("Top", &[p, s]).unwrap();
//!     b.build(top).unwrap()
//! }
//!
//! let service = AnalysisService::new(ServiceOptions::default());
//!
//! // Asynchronous: submit returns immediately, wait() collects the report.
//! let handle = service.submit(AnalysisJob::new(
//!     variant(1.0),
//!     AnalysisOptions::default(),
//!     vec![Measure::Mttf],
//! ));
//! assert!((handle.wait().results.unwrap()[0].value() - 2.0).abs() < 1e-6);
//!
//! // Batched: six jobs over two distinct structures — only two models are
//! // ever built, and the first one is already cached from the job above.
//! let jobs: Vec<AnalysisJob> = (0..6)
//!     .map(|i| AnalysisJob::new(
//!         variant(if i % 2 == 0 { 1.0 } else { 2.0 }),
//!         AnalysisOptions::default(),
//!         vec![Measure::curve([0.5, 1.0]), Measure::Mttf],
//!     ))
//!     .collect();
//! let report = service.run_batch(&jobs);
//! assert_eq!(report.stats.cache_misses, 1);
//! assert_eq!(report.stats.cache_hits, 5);
//! assert_eq!(report.stats.aggregation_runs, 1);
//! for job in &report.jobs {
//!     let results = job.results.as_ref().unwrap();
//!     assert_eq!(results.len(), 2);
//! }
//! ```

mod handle;
mod queue;
mod worker;

pub use handle::{JobHandle, SweepHandle};
pub use queue::QueueStats;

use crate::analysis::{AnalysisOptions, Method};
use crate::engine::{Analyzer, ParametricAnalyzer};
use crate::parametric::Valuation;
use crate::query::{Measure, MeasureResult};
use crate::request::AnalysisRequest;
use crate::store::{ModelStore, StoreStats};
use crate::{Error, Result};
use dft::Dft;
use handle::SweepState;
use queue::{JobQueue, Task};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// One unit of work for the service: analyze one DFT for a list of measures.
///
/// Jobs own all their data (`Measure` holds curve times in a `Vec<f64>`), so a
/// job is `Send + 'static` and can be queued, cloned and shipped to worker
/// threads freely.
#[derive(Debug, Clone)]
pub struct AnalysisJob {
    /// The tree to analyze.
    pub dft: Dft,
    /// Analysis options; the method and epsilon take part in the cache key, so
    /// jobs with different options never share a session.
    pub options: AnalysisOptions,
    /// The measures to evaluate, answered in one
    /// [`query_all`](Analyzer::query_all) pass against the (possibly cached)
    /// session.
    pub measures: Vec<Measure>,
}

impl AnalysisJob {
    /// Bundles a DFT, its options and the requested measures into a job.
    pub fn new(dft: Dft, options: AnalysisOptions, measures: Vec<Measure>) -> AnalysisJob {
        AnalysisJob {
            dft,
            options,
            measures,
        }
    }
}

/// Tuning knobs of an [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Size of the service's persistent worker pool.
    ///
    /// `0` (the default) means one worker per available CPU core
    /// ([`std::thread::available_parallelism`]).  The pool is spawned lazily on
    /// the first submission — a service that never receives work never spawns
    /// a thread — and lives until the service is dropped.
    pub workers: usize,
    /// Maximum number of cached `Arc<Analyzer>` sessions; the least recently
    /// used session is evicted beyond this.  `0` means unbounded.  The
    /// parametric-model cache has its own budget of the same size.
    pub cache_capacity: usize,
    /// Directory of the persistent cross-process model cache
    /// ([`ModelStore`]), or `None` (the default) for a purely in-memory
    /// service.
    ///
    /// With a store configured, every in-memory cache miss consults the store
    /// before building — a restart or a fleet neighbour that already
    /// aggregated the same structure turns the build into a disk read — and
    /// every freshly built model is written back (atomically, best-effort:
    /// write failures degrade to an in-memory-only entry, they never fail the
    /// job).  Set it with [`ServiceOptions::store`].
    pub store: Option<PathBuf>,
}

impl ServiceOptions {
    /// Returns the options with the persistent model store rooted at `path`
    /// (see [`ServiceOptions::store`](struct@ServiceOptions#structfield.store)).
    #[must_use]
    pub fn store(mut self, path: impl Into<PathBuf>) -> ServiceOptions {
        self.store = Some(path.into());
        self
    }
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            workers: 0,
            cache_capacity: 128,
            store: None,
        }
    }
}

/// Sessions are shared per structure *and* per analysis configuration: the same
/// tree analysed monolithically or with a different epsilon is a different
/// model (epsilon drives every numerical query on the session).
///
/// Sessions *instantiated from a parametric model* additionally carry the
/// valuation fingerprint: their structure key is the rate-blind
/// [`Dft::structural_fingerprint`] (the valuation fully determines the rates),
/// so a fleet of rate variants shares one parametric model and each distinct
/// valuation one instantiated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    method: Method,
    epsilon_bits: u64,
    /// `Some(valuation fingerprint)` for instantiated parametric sessions,
    /// `None` for directly built ones.
    valuation: Option<u64>,
}

impl CacheKey {
    fn new(dft: &Dft, options: &AnalysisOptions) -> CacheKey {
        CacheKey {
            fingerprint: dft.fingerprint(),
            method: options.method,
            epsilon_bits: options.epsilon.to_bits(),
            valuation: None,
        }
    }

    fn instance(structural: u64, options: &AnalysisOptions, valuation: &Valuation) -> CacheKey {
        CacheKey {
            fingerprint: structural,
            method: options.method,
            epsilon_bits: options.epsilon.to_bits(),
            valuation: Some(valuation.fingerprint()),
        }
    }
}

/// Parametric models are shared per rate-blind structure and analysis
/// configuration.  The method takes part even though only the compositional
/// method can ever *succeed*: a monolithic sweep caches its deterministic
/// `Unsupported` error under its own key instead of poisoning the
/// compositional entry for the same structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ParamCacheKey {
    structural_fingerprint: u64,
    method: Method,
    epsilon_bits: u64,
}

/// A cache slot: `OnceLock` guarantees the build runs exactly once even when
/// several workers race for the same key — latecomers block until the winner's
/// session (or its error, which is equally deterministic) is available.
type Slot = Arc<OnceLock<std::result::Result<Arc<Analyzer>, Error>>>;

/// The parametric-model counterpart of [`Slot`].
type ParamSlot = Arc<OnceLock<std::result::Result<Arc<ParametricAnalyzer>, Error>>>;

#[derive(Debug)]
struct CacheEntry {
    slot: Slot,
    last_used: u64,
}

#[derive(Debug)]
struct ParamCacheEntry {
    slot: ParamSlot,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Cache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Parametric (symbolic-rate) models, keyed by rate-blind structure.
    param_entries: HashMap<ParamCacheKey, ParamCacheEntry>,
    /// Monotonic use counter backing the LRU order (no wall clock involved, so
    /// the order is deterministic under a single worker).
    tick: u64,
}

/// Cumulative cache counters of a service, across all batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs that found their session already built (or being built).
    pub hits: usize,
    /// Jobs that had to build their session.
    pub misses: usize,
    /// *Session* entries dropped to respect
    /// [`ServiceOptions::cache_capacity`].  Parametric models evicted from
    /// their own cache are counted in
    /// [`parametric_evictions`](Self::parametric_evictions), never here.
    pub evictions: usize,
    /// Sessions currently cached.
    pub entries: usize,
    /// Sweep calls that found their parametric model already built.
    pub parametric_hits: usize,
    /// Sweep calls that had to build their parametric model.
    pub parametric_misses: usize,
    /// Parametric models dropped to respect the parametric cache's own
    /// [`ServiceOptions::cache_capacity`] budget.
    pub parametric_evictions: usize,
    /// Parametric models currently cached.
    pub parametric_entries: usize,
}

/// Cumulative counters of the hybrid static/dynamic backend, across every
/// fresh [`Method::Hybrid`] build the service performed (sessions and
/// parametric models alike; cache hits bump nothing).
///
/// `builds` counts sessions whose decomposition actually happened, `fallbacks`
/// those that silently reverted to the full compositional pipeline (repairable
/// tree or non-deterministic core).  The element counters accumulate the
/// [`ModuleStats`](dft::modules::ModuleStats) of genuine decompositions, so
/// `crown_elements / (crown_elements + core_elements)` is the fraction of the
/// fleet's workload solved combinatorially instead of by state space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Fresh hybrid builds where the decomposition happened.
    pub builds: usize,
    /// Fresh hybrid builds that fell back to the compositional pipeline.
    pub fallbacks: usize,
    /// Dynamic cores analysed by state space, summed over all `builds`.
    pub cores: usize,
    /// Elements solved on the crown BDD, summed over all `builds`.
    pub crown_elements: usize,
    /// Elements left in dynamic cores, summed over all `builds`.
    pub core_elements: usize,
}

/// Per-batch accounting of a [`run_batch`](AnalysisService::run_batch) call.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Number of jobs in the batch.
    pub jobs: usize,
    /// Jobs answered from an already-built (or concurrently building) session.
    pub cache_hits: usize,
    /// Jobs that built their session.
    pub cache_misses: usize,
    /// Compositional aggregation runs actually executed for this batch — equal
    /// to the number of *distinct* compositional models built, however many
    /// duplicate trees the batch contains.
    pub aggregation_runs: usize,
    /// Jobs that had to *block* on a concurrent builder of the same model.
    /// The queue parks duplicates of an in-flight model until its leader
    /// finishes, so queued work keeps this at 0: all jobs for one model wait
    /// *parked* — their worker stays free for other models — instead of
    /// idling on the same `OnceLock`.  The one exception is an eviction race
    /// under a too-small [`ServiceOptions::cache_capacity`]: if a built
    /// session is evicted *between* two duplicates being claimed as ordinary
    /// cache hits, they can race the rebuild and one blocks.
    pub build_waits: usize,
    /// Size of the persistent worker pool the batch ran on (0 for an empty
    /// batch, which never starts the pool).
    pub workers: usize,
    /// Build-phase time summed over all jobs (cache hits contribute only their
    /// lookup — or the time spent blocking on a concurrent builder).
    pub build_time: Duration,
    /// Query-phase time summed over all jobs.
    pub query_time: Duration,
    /// End-to-end wall-clock time of the batch.
    pub wall_time: Duration,
}

/// The outcome of one [`AnalysisJob`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Structural fingerprint of the job's tree ([`Dft::fingerprint`]).
    pub fingerprint: u64,
    /// `true` when the session came out of the cache (including waiting for a
    /// concurrent builder of the same tree) instead of being built by this job.
    pub cache_hit: bool,
    /// One [`MeasureResult`] per requested measure, in request order — or the
    /// first error the job hit (build or query).
    pub results: Result<Vec<MeasureResult>>,
    /// Compositional aggregation runs this job executed: 1 when it built a
    /// compositional session, 0 for cache hits, monolithic builds and failed
    /// builds.
    pub aggregation_runs: usize,
    /// `true` when this job blocked on a concurrent builder of the same model
    /// (a cache "hit" that still paid most of the build latency).
    pub build_wait: bool,
    /// Time this job spent obtaining its session (≈ lookup cost on a hit, full
    /// conversion + aggregation on a miss).
    pub build: Duration,
    /// Time this job spent answering its measures against the session.
    pub query: Duration,
}

/// The outcome of a whole batch: per-job reports in submission order plus the
/// batch-level accounting.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One report per submitted job, in the same order as the batch slice.
    pub jobs: Vec<JobReport>,
    /// Cache and phase-timing accounting for the batch.
    pub stats: BatchStats,
}

/// A rate-sweep job: one tree, one set of measures, many rate [`Valuation`]s.
///
/// The service aggregates the tree's *structure* once into a shared
/// [`ParametricAnalyzer`] (cached by [`Dft::structural_fingerprint`], so every
/// rate variant of the same structure reuses it — across sweep calls too) and
/// instantiates one numeric session per distinct valuation (cached by
/// `(structural fingerprint, valuation)`).
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The tree whose structure is swept; its own rates define the *base*
    /// valuation but do not otherwise constrain the sweep.
    pub dft: Dft,
    /// Analysis options; must use the compositional method (the monolithic
    /// baseline has no parametric form).
    pub options: AnalysisOptions,
    /// The measures to evaluate per valuation, answered in one
    /// [`query_all`](Analyzer::query_all) pass each.
    pub measures: Vec<Measure>,
    /// The rate assignments to instantiate, typically built via
    /// [`ParamTable`](crate::parametric::ParamTable) constructors.
    pub valuations: Vec<Valuation>,
}

impl SweepJob {
    /// Bundles a tree, options, measures and valuations into a sweep job.
    pub fn new(
        dft: Dft,
        options: AnalysisOptions,
        measures: Vec<Measure>,
        valuations: Vec<Valuation>,
    ) -> SweepJob {
        SweepJob {
            dft,
            options,
            measures,
            valuations,
        }
    }
}

pub use crate::request::SweepSpec;

/// The pending side of a submitted [`AnalysisRequest`]: a [`JobHandle`] for
/// plain requests, a [`SweepHandle`] when a sweep was attached.
#[derive(Debug)]
pub enum RequestHandle {
    /// The request had no sweep and went down the [`AnalysisJob`] path.
    Job(JobHandle),
    /// The request carried a [`SweepSpec`] and went down the sweep path.
    Sweep(SweepHandle),
}

impl RequestHandle {
    /// Blocks until the pool delivers the report.
    pub fn wait(self) -> RequestOutcome {
        match self {
            RequestHandle::Job(handle) => RequestOutcome::Job(handle.wait()),
            RequestHandle::Sweep(handle) => RequestOutcome::Sweep(handle.wait()),
        }
    }
}

/// The outcome of an [`AnalysisRequest`], mirroring [`RequestHandle`].
#[derive(Debug, Clone)]
pub enum RequestOutcome {
    /// Report of a plain (no-sweep) request.
    Job(JobReport),
    /// Report of a sweep request.
    Sweep(SweepReport),
}

/// The outcome of one valuation of a [`SweepJob`].
#[derive(Debug, Clone)]
pub struct SweepPointReport {
    /// Fingerprint of the valuation ([`Valuation::fingerprint`]).
    pub valuation_fingerprint: u64,
    /// `true` when the instantiated session came out of the cache.
    pub cache_hit: bool,
    /// One [`MeasureResult`] per requested measure, in request order — or the
    /// first error (invalid valuation, query failure).
    pub results: Result<Vec<MeasureResult>>,
    /// Time spent instantiating (rate-form evaluation + CTMDP setup) or
    /// fetching the session.
    pub instantiate: Duration,
    /// Time spent answering the measures.
    pub query: Duration,
}

/// Batch-level accounting of a [`run_sweep`](AnalysisService::run_sweep) call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Number of valuations in the sweep.
    pub valuations: usize,
    /// Valuations answered from an already-instantiated session.
    pub cache_hits: usize,
    /// Valuations that instantiated their session.
    pub cache_misses: usize,
    /// `true` when the parametric model itself came out of the cache.
    pub parametric_cache_hit: bool,
    /// Compositional aggregation runs executed by this call: 1 when it built
    /// the parametric model, 0 on a parametric cache hit — never once per
    /// valuation.
    pub aggregation_runs: usize,
    /// Size of the persistent worker pool the sweep ran on (always 0 for an
    /// empty sweep, which enqueues nothing and never starts the pool).
    pub workers: usize,
    /// Time spent obtaining the parametric model (full aggregation on a miss).
    pub build_time: Duration,
    /// Instantiation time summed over all valuations.
    pub instantiate_time: Duration,
    /// Query time summed over all valuations.
    pub query_time: Duration,
    /// End-to-end wall-clock time of the sweep, from submission to the last
    /// completed valuation.
    pub wall_time: Duration,
}

/// The outcome of a whole [`SweepJob`]: per-valuation reports in request order
/// plus the sweep-level accounting.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One report per valuation, in the same order as the job's valuations.
    pub points: Vec<SweepPointReport>,
    /// Cache and phase-timing accounting for the sweep.
    pub stats: SweepStats,
}

/// The state shared between the service front end and its worker threads: the
/// session caches, the cumulative counters, and the job queue.
#[derive(Debug, Default)]
struct ServiceCore {
    options: ServiceOptions,
    cache: Mutex<Cache>,
    /// The persistent cross-process store, when [`ServiceOptions::store`]
    /// names one (and its directory is usable).  Owned by the core, so
    /// write-back always happens *inside* the cache slot's one-time build —
    /// strictly before the builder's report is delivered to any handle and
    /// therefore before the service's drop-drain can possibly complete.
    store: Option<ModelStore>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    parametric_hits: AtomicUsize,
    parametric_misses: AtomicUsize,
    parametric_evictions: AtomicUsize,
    /// Hybrid-decomposition counters (see [`HybridStats`]), bumped on every
    /// fresh [`Method::Hybrid`] build — session or parametric, including
    /// sessions restored from the persistent store.
    hybrid_builds: AtomicUsize,
    hybrid_fallbacks: AtomicUsize,
    hybrid_cores: AtomicUsize,
    hybrid_crown_elements: AtomicUsize,
    hybrid_core_elements: AtomicUsize,
    queue: JobQueue,
}

/// The worker threads of a started pool, joined when the service drops.
#[derive(Debug)]
struct Pool {
    workers: Vec<thread::JoinHandle<()>>,
    size: usize,
}

/// A thread-safe, cache-backed analysis front end for portfolios of DFTs.
///
/// See the [module documentation](self) for the full story and an example.  The
/// service is `Send + Sync` (statically asserted below): one instance can be
/// shared behind an `Arc` by any number of submitting threads, all feeding the
/// same persistent worker pool through [`submit`](Self::submit) /
/// [`submit_sweep`](Self::submit_sweep) (or their blocking wrappers
/// [`run_batch`](Self::run_batch) / [`run_sweep`](Self::run_sweep)).
///
/// Dropping the service shuts the pool down deterministically: no further
/// submissions are possible (dropping requires exclusive ownership), the
/// workers drain every queued task — so every outstanding [`JobHandle`] /
/// [`SweepHandle`] still receives its report — and the threads are joined.
#[derive(Debug)]
pub struct AnalysisService {
    core: Arc<ServiceCore>,
    pool: Mutex<Option<Pool>>,
}

impl Default for AnalysisService {
    fn default() -> AnalysisService {
        AnalysisService::new(ServiceOptions::default())
    }
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<AnalysisService>();
    assert_send_sync::<AnalysisJob>();
    assert_send::<JobHandle>();
    assert_send::<SweepHandle>()
};

impl AnalysisService {
    /// Creates a service with the given options.  No worker thread is spawned
    /// until the first (non-empty) submission.
    ///
    /// When [`ServiceOptions::store`] names a directory that cannot be opened
    /// or created, the service degrades to purely in-memory caching (visible
    /// through [`store_stats`](Self::store_stats) returning `None`) — the
    /// cache path never fails because of the store.
    pub fn new(options: ServiceOptions) -> AnalysisService {
        let store = options
            .store
            .as_ref()
            .and_then(|path| ModelStore::open(path).ok());
        AnalysisService {
            core: Arc::new(ServiceCore {
                options,
                store,
                ..ServiceCore::default()
            }),
            pool: Mutex::new(None),
        }
    }

    /// The options the service was created with.
    pub fn options(&self) -> &ServiceOptions {
        &self.core.options
    }

    /// Enqueues one job on the persistent worker pool and returns immediately.
    ///
    /// The returned [`JobHandle`] delivers the [`JobReport`] through
    /// [`wait`](JobHandle::wait) (blocking) or
    /// [`try_result`](JobHandle::try_result) (polling).  Any number of threads
    /// may submit concurrently; jobs for the same model share one build through
    /// the cache and the queue's leader/follower scheduling, exactly like a
    /// [`run_batch`](Self::run_batch) over the same jobs.
    pub fn submit(&self, job: AnalysisJob) -> JobHandle {
        self.ensure_pool();
        let key = CacheKey::new(&job.dft, &job.options);
        let (tx, rx) = mpsc::channel();
        self.core.queue.push(Task::Job {
            job: Box::new(job),
            key,
            tx,
        });
        JobHandle::new(rx)
    }

    /// Enqueues a whole rate sweep and returns immediately; the counterpart of
    /// [`run_sweep`](Self::run_sweep) for asynchronous clients.
    ///
    /// The sweep's head task obtains the shared parametric model once, then
    /// its valuations fan out across the pool; the [`SweepHandle`] delivers
    /// the assembled [`SweepReport`] when the last valuation finishes.  A
    /// sweep without valuations is a true no-op: nothing is built or enqueued,
    /// no thread is spawned, and the (empty) report is available immediately.
    pub fn submit_sweep(&self, job: SweepJob) -> SweepHandle {
        self.submit_sweep_spec(
            job.dft,
            job.options,
            job.measures,
            SweepSpec::Valuations(job.valuations),
        )
    }

    /// Enqueues a rate sweep described *symbolically*: the [`SweepSpec`] is
    /// resolved into concrete valuations by the sweep's head task on the
    /// worker pool, after the shared parametric model is built (or fetched).
    ///
    /// This is how a caller that has never seen the model's
    /// [`ParamTable`](crate::parametric::ParamTable) — a network front end,
    /// typically — sweeps by failure
    /// scale or by element name.  [`submit_sweep`](Self::submit_sweep) is the
    /// special case with pre-built valuations.  A resolution error (unknown
    /// element) is reported in every point's
    /// [`results`](SweepPointReport::results); like per-point query errors it
    /// never panics the pool.  An empty spec is a true no-op, exactly like an
    /// empty [`SweepJob`].
    pub fn submit_sweep_spec(
        &self,
        dft: Dft,
        options: AnalysisOptions,
        measures: Vec<Measure>,
        spec: SweepSpec,
    ) -> SweepHandle {
        if spec.is_empty() {
            // `SweepStats::default()` already says workers: 0 — the sweep
            // used none, whether or not earlier submissions started the pool.
            return SweepHandle::ready(SweepReport {
                points: Vec::new(),
                stats: SweepStats::default(),
            });
        }
        let workers = self.ensure_pool();
        let (tx, rx) = mpsc::channel();
        let state = Arc::new(SweepState::new(dft, options, measures, spec, workers, tx));
        self.core.queue.push(Task::SweepStart { state });
        SweepHandle::new(rx)
    }

    /// Runs a batch of jobs on the worker pool and reports per-job results plus
    /// cache and phase-timing accounting.
    ///
    /// This is the blocking wrapper over [`submit`](Self::submit): every job is
    /// enqueued, the calling thread waits for all of them, and the reports keep
    /// submission order.  Dispatch is *cache-aware*: the queue parks duplicates
    /// of an in-flight model until its leader finishes, so no worker ever
    /// blocks on a concurrent build (see [`BatchStats::build_waits`]) — yet the
    /// released duplicates still run in parallel across the pool.  Job errors
    /// (unsupported features, numerical failures) are reported per job in
    /// [`JobReport::results`]; they never abort the batch.
    ///
    /// An empty batch is a true no-op: no thread is spawned, nothing is
    /// enqueued.  Each job is cloned once into the queue (tasks must own
    /// their data); callers that already own their jobs can
    /// [`submit`](Self::submit) them clone-free.
    pub fn run_batch(&self, jobs: &[AnalysisJob]) -> ServiceReport {
        let started = Instant::now();
        if jobs.is_empty() {
            return ServiceReport {
                jobs: Vec::new(),
                stats: BatchStats {
                    wall_time: started.elapsed(),
                    ..BatchStats::default()
                },
            };
        }

        let handles: Vec<JobHandle> = jobs.iter().map(|job| self.submit(job.clone())).collect();
        let workers = self.pool_workers();
        let job_reports: Vec<JobReport> = handles.into_iter().map(JobHandle::wait).collect();

        let mut stats = BatchStats {
            jobs: job_reports.len(),
            workers,
            wall_time: started.elapsed(),
            ..BatchStats::default()
        };
        for report in &job_reports {
            if report.cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            stats.aggregation_runs += report.aggregation_runs;
            stats.build_waits += usize::from(report.build_wait);
            stats.build_time += report.build;
            stats.query_time += report.query;
        }

        ServiceReport {
            jobs: job_reports,
            stats,
        }
    }

    /// Returns the shared [`Analyzer`] session for one DFT, building it if no
    /// structurally identical tree with the same options is cached yet.
    ///
    /// This is the single-job face of the service: callers that want to hold a
    /// session across many batches (or query it directly) get the same
    /// exactly-once build and LRU accounting as [`run_batch`](Self::run_batch).
    /// The build runs on the *calling* thread — no queueing is involved.
    ///
    /// # Errors
    ///
    /// Propagates [`Analyzer::new`] errors.  A failed build is cached too — the
    /// failure is deterministic, so retrying a structurally identical tree
    /// returns the same error without paying the construction cost again.
    pub fn analyzer(&self, dft: &Dft, options: &AnalysisOptions) -> Result<Arc<Analyzer>> {
        let (session, _, _) = self
            .core
            .session_tracked(CacheKey::new(dft, options), dft, options);
        session
    }

    /// Runs a rate sweep: the tree's structure is aggregated once into a
    /// cached [`ParametricAnalyzer`] (shared by *every* rate variant of the
    /// same structure, this call and future ones), then the valuations are
    /// instantiated and queried on the worker pool.
    ///
    /// This is the blocking wrapper over [`submit_sweep`](Self::submit_sweep).
    /// Instantiated sessions enter the regular LRU session cache keyed by
    /// `(structural fingerprint, valuation)`, so repeated valuations — within
    /// one sweep or across sweeps and batches — never pay instantiation twice.
    /// Per-valuation errors are reported in place and never abort the sweep.
    /// A sweep without valuations is a true no-op (nothing is built, spawned
    /// or enqueued).
    pub fn run_sweep(&self, job: &SweepJob) -> SweepReport {
        self.submit_sweep(job.clone()).wait()
    }

    /// Enqueues an [`AnalysisRequest`] — the surface-agnostic "tree +
    /// options + measures + optional sweep" description every front end
    /// produces — and returns immediately.
    ///
    /// This is *the* entry point behind the HTTP server and the `dftmc`
    /// CLI: a request with a sweep goes down the
    /// [`submit_sweep_spec`](Self::submit_sweep_spec) path, one without
    /// down the [`submit`](Self::submit) path, so every surface gets
    /// bit-identical results to the equivalent library calls.
    pub fn submit_request(&self, request: AnalysisRequest) -> RequestHandle {
        match request.sweep {
            Some(spec) => RequestHandle::Sweep(self.submit_sweep_spec(
                request.dft,
                request.options,
                request.measures,
                spec,
            )),
            None => RequestHandle::Job(self.submit(AnalysisJob::new(
                request.dft,
                request.options,
                request.measures,
            ))),
        }
    }

    /// Runs an [`AnalysisRequest`] to completion: the blocking wrapper over
    /// [`submit_request`](Self::submit_request).
    pub fn run_request(&self, request: AnalysisRequest) -> RequestOutcome {
        self.submit_request(request).wait()
    }

    /// Cumulative cache counters since the service was created.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache_stats()
    }

    /// Cumulative hybrid-decomposition counters since the service was created
    /// (see [`HybridStats`]).
    pub fn hybrid_stats(&self) -> HybridStats {
        self.core.hybrid_stats()
    }

    /// Cumulative counters of the persistent model store, or `None` when the
    /// service runs without one (no [`ServiceOptions::store`], or its
    /// directory was unusable at construction).
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.core.store.as_ref().map(ModelStore::stats)
    }

    /// Cumulative counters of the submission queue (tasks submitted, parked
    /// behind in-flight builds, released, completed).
    pub fn queue_stats(&self) -> QueueStats {
        self.core.queue.stats()
    }

    /// Cumulative counters of the numeric relax kernel (value-iteration
    /// passes, threaded passes, batched calls).  The counters are
    /// process-global — they also count kernel work done outside this
    /// service — and monotonically increasing, so accounting code should
    /// report deltas between snapshots.
    pub fn kernel_stats(&self) -> markov::kernel::KernelStats {
        markov::kernel::stats()
    }

    /// Size of the persistent worker pool: 0 while no submission has started
    /// it yet, [`ServiceOptions::workers`] (with 0 resolved to the core count)
    /// afterwards.
    pub fn pool_workers(&self) -> usize {
        self.pool
            .lock()
            .expect("pool lock")
            .as_ref()
            .map_or(0, |pool| pool.size)
    }

    /// Drops every cached session and parametric model (the cumulative
    /// hit/miss counters keep counting).
    pub fn clear_cache(&self) {
        let mut cache = self.core.cache.lock().expect("cache lock");
        cache.entries.clear();
        cache.param_entries.clear();
    }

    /// Starts the worker pool if it is not running yet; returns its size.
    fn ensure_pool(&self) -> usize {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.is_none() {
            let size = resolved_workers(&self.core.options);
            // The pool is about to occupy `size` threads; cap the numeric
            // kernel's nested relax threading to the leftover parallelism so
            // a saturated pool never oversubscribes the host.  The cap only
            // affects wall-clock — kernel results are worker-count-invariant.
            let cores = thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            markov::kernel::set_max_workers((cores / size).max(1));
            let workers = (0..size)
                .map(|i| {
                    let core = Arc::clone(&self.core);
                    thread::Builder::new()
                        .name(format!("dftmc-worker-{i}"))
                        .spawn(move || worker::run(&core))
                        .expect("spawn service worker thread")
                })
                .collect();
            *pool = Some(Pool { workers, size });
        }
        pool.as_ref().expect("pool just ensured").size
    }
}

impl Drop for AnalysisService {
    /// Deterministic shutdown: drain the queue (every outstanding handle still
    /// receives its report), then join the workers.  Dropping a service whose
    /// pool never started is free.
    ///
    /// The persistent store needs no extra flushing here: the core owns the
    /// [`ModelStore`] and write-back happens synchronously inside each cache
    /// slot's one-time build — strictly *before* the building job's report is
    /// sent to its handle — so by the time the drain completes, every model
    /// the drained jobs built is already on disk (or was skipped by a counted
    /// write error).
    fn drop(&mut self) {
        let pool = match self.pool.get_mut() {
            Ok(pool) => pool.take(),
            Err(_) => None,
        };
        if let Some(pool) = pool {
            self.core.queue.begin_shutdown();
            for worker in pool.workers {
                // A worker that panicked already delivered its panic to the
                // handle waiting on its current task; don't double-panic the
                // destructor.
                let _ = worker.join();
            }
        }
    }
}

/// Resolves [`ServiceOptions::workers`] (0 = one per core) to a pool size.
fn resolved_workers(options: &ServiceOptions) -> usize {
    if options.workers == 0 {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        options.workers
    }
}

impl ServiceCore {
    /// Executes one batch job against the cache: build-or-fetch the session,
    /// then answer the measures.  `key` was computed once at submission.
    fn run_job(&self, key: CacheKey, job: &AnalysisJob) -> JobReport {
        let fingerprint = key.fingerprint;
        let build_start = Instant::now();
        let (session, cache_hit, build_wait) = self.session_tracked(key, &job.dft, &job.options);
        let build = build_start.elapsed();
        match session {
            Err(e) => JobReport {
                fingerprint,
                cache_hit,
                results: Err(e),
                aggregation_runs: 0,
                build_wait,
                build,
                query: Duration::ZERO,
            },
            Ok(analyzer) => {
                let aggregation_runs = if cache_hit {
                    0
                } else {
                    analyzer.aggregation_runs()
                };
                let query_start = Instant::now();
                let results = analyzer.query_all(&job.measures);
                JobReport {
                    fingerprint,
                    cache_hit,
                    results,
                    aggregation_runs,
                    build_wait,
                    build,
                    query: query_start.elapsed(),
                }
            }
        }
    }

    /// Executes one sweep valuation: instantiate-or-fetch the session from the
    /// shared parametric model, then answer the measures.
    fn run_sweep_point(
        &self,
        parametric: &Result<Arc<ParametricAnalyzer>>,
        structural: u64,
        options: &AnalysisOptions,
        measures: &[Measure],
        valuation: &Valuation,
    ) -> SweepPointReport {
        let valuation_fingerprint = valuation.fingerprint();
        let parametric = match parametric {
            Ok(p) => p,
            Err(e) => {
                return SweepPointReport {
                    valuation_fingerprint,
                    cache_hit: false,
                    results: Err(e.clone()),
                    instantiate: Duration::ZERO,
                    query: Duration::ZERO,
                }
            }
        };

        let key = CacheKey::instance(structural, options, valuation);
        let instantiate_start = Instant::now();
        let slot = self.reserve(key);
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            parametric.instantiate(valuation).map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let instantiate = instantiate_start.elapsed();

        match outcome {
            Err(e) => SweepPointReport {
                valuation_fingerprint,
                cache_hit: !built,
                results: Err(e.clone()),
                instantiate,
                query: Duration::ZERO,
            },
            Ok(session) => {
                let query_start = Instant::now();
                let results = session.query_all(measures);
                SweepPointReport {
                    valuation_fingerprint,
                    cache_hit: !built,
                    results,
                    instantiate,
                    query: query_start.elapsed(),
                }
            }
        }
    }

    /// Get-or-build for the shared parametric model of a sweep job; the
    /// boolean is `true` for a cache hit.
    fn parametric(
        &self,
        structural: u64,
        dft: &Dft,
        options: &AnalysisOptions,
    ) -> (Result<Arc<ParametricAnalyzer>>, bool) {
        let key = ParamCacheKey {
            structural_fingerprint: structural,
            method: options.method,
            epsilon_bits: options.epsilon.to_bits(),
        };
        let slot = self.reserve_param(key);
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            // Consult the cross-process store first: a warm entry (written by
            // an earlier run, or by a fleet neighbour sharing the directory)
            // turns the aggregation into a disk read; the restored model
            // reports `aggregation_runs() == 0`.
            if let Some(store) = &self.store {
                if let Some(parametric) = store.load_parametric(structural, options) {
                    return Ok(Arc::new(parametric));
                }
            }
            let result = ParametricAnalyzer::new(dft, options.clone()).map(Arc::new);
            if let (Some(store), Ok(parametric)) = (&self.store, &result) {
                // Best-effort write-back: a failure is counted in the store's
                // own stats and the entry stays in-memory-only.
                let _ = store.save_parametric(structural, parametric);
            }
            result
        });
        if built {
            self.parametric_misses.fetch_add(1, Ordering::Relaxed);
            if let Ok(parametric) = outcome {
                self.record_hybrid(parametric.options().method, parametric.module_stats());
            }
        } else {
            self.parametric_hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            match outcome {
                Ok(parametric) => Ok(Arc::clone(parametric)),
                Err(e) => Err(e.clone()),
            },
            !built,
        )
    }

    /// Cumulative cache counters since the service was created.
    fn cache_stats(&self) -> CacheStats {
        let (entries, parametric_entries) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.entries.len(), cache.param_entries.len())
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            parametric_hits: self.parametric_hits.load(Ordering::Relaxed),
            parametric_misses: self.parametric_misses.load(Ordering::Relaxed),
            parametric_evictions: self.parametric_evictions.load(Ordering::Relaxed),
            parametric_entries,
        }
    }

    /// Whether the session for `key` is already built (successfully or not).
    /// Used by the queue's claim step to decide leadership; deliberately does
    /// not touch the LRU order.
    fn is_built(&self, key: &CacheKey) -> bool {
        let cache = self.cache.lock().expect("cache lock");
        cache
            .entries
            .get(key)
            .is_some_and(|entry| entry.slot.get().is_some())
    }

    /// Get-or-build with exactly-once semantics; the first boolean is `true`
    /// for a cache hit (the session existed or a concurrent worker built it),
    /// the second when the hit *blocked* on a concurrent builder.  The caller
    /// supplies the key so the fingerprint is hashed once per job.
    fn session_tracked(
        &self,
        key: CacheKey,
        dft: &Dft,
        options: &AnalysisOptions,
    ) -> (Result<Arc<Analyzer>>, bool, bool) {
        let slot = self.reserve(key);
        // A slot that is still empty here either becomes ours to build or means
        // another worker is building it right now — in the latter case the
        // `get_or_init` below blocks for the whole build.
        let ready = slot.get().is_some();
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            // Cross-process store first (see `parametric` above): a warm
            // entry replaces the whole build with a disk read.  Instantiated
            // parametric sessions never reach this path (they are built in
            // `run_sweep_point`), so only directly built sessions are
            // persisted.
            if let Some(store) = &self.store {
                if let Some(analyzer) = store.load_analyzer(key.fingerprint, options) {
                    return Ok(Arc::new(analyzer));
                }
            }
            let result = Analyzer::new(dft, options.clone()).map(Arc::new);
            if let (Some(store), Ok(analyzer)) = (&self.store, &result) {
                let _ = store.save_analyzer(key.fingerprint, analyzer);
            }
            result
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Ok(analyzer) = outcome {
                self.record_hybrid(analyzer.method(), analyzer.module_stats());
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            match outcome {
                Ok(analyzer) => Ok(Arc::clone(analyzer)),
                Err(e) => Err(e.clone()),
            },
            !built,
            !built && !ready,
        )
    }

    /// Bumps the [`HybridStats`] counters for one fresh build (no-op for the
    /// other methods).
    fn record_hybrid(&self, method: Method, modules: Option<dft::modules::ModuleStats>) {
        if method != Method::Hybrid {
            return;
        }
        match modules {
            Some(modules) => {
                self.hybrid_builds.fetch_add(1, Ordering::Relaxed);
                self.hybrid_cores
                    .fetch_add(modules.core_count, Ordering::Relaxed);
                self.hybrid_crown_elements
                    .fetch_add(modules.crown_elements, Ordering::Relaxed);
                self.hybrid_core_elements
                    .fetch_add(modules.core_elements, Ordering::Relaxed);
            }
            None => {
                self.hybrid_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Cumulative hybrid-decomposition counters since the service was created.
    fn hybrid_stats(&self) -> HybridStats {
        HybridStats {
            builds: self.hybrid_builds.load(Ordering::Relaxed),
            fallbacks: self.hybrid_fallbacks.load(Ordering::Relaxed),
            cores: self.hybrid_cores.load(Ordering::Relaxed),
            crown_elements: self.hybrid_crown_elements.load(Ordering::Relaxed),
            core_elements: self.hybrid_core_elements.load(Ordering::Relaxed),
        }
    }

    /// Returns the slot for `key`, inserting a fresh one (and evicting the
    /// least recently used *initialized* entry beyond capacity) under the cache
    /// lock.  The actual build happens outside the lock, so a slow aggregation
    /// never stalls jobs for other trees.
    fn reserve(&self, key: CacheKey) -> Slot {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.slot);
        }
        let slot: Slot = Arc::new(OnceLock::new());
        cache.entries.insert(
            key,
            CacheEntry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        let capacity = self.options.cache_capacity;
        while capacity > 0 && cache.entries.len() > capacity {
            // In-flight (uninitialized) slots are exempt: evicting one would let
            // a racing duplicate rebuild the same model.
            let victim = cache
                .entries
                .iter()
                .filter(|(k, e)| **k != key && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    cache.entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        slot
    }

    /// [`reserve`](Self::reserve) for the parametric-model cache: same LRU
    /// policy and capacity, its own key space (parametric models are far
    /// rarer and far more valuable than instantiated sessions, so they do not
    /// compete with them for slots) and its own eviction counter
    /// ([`CacheStats::parametric_evictions`]).
    fn reserve_param(&self, key: ParamCacheKey) -> ParamSlot {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.param_entries.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.slot);
        }
        let slot: ParamSlot = Arc::new(OnceLock::new());
        cache.param_entries.insert(
            key,
            ParamCacheEntry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        let capacity = self.options.cache_capacity;
        while capacity > 0 && cache.param_entries.len() > capacity {
            let victim = cache
                .param_entries
                .iter()
                .filter(|(k, e)| **k != key && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    cache.param_entries.remove(&k);
                    self.parametric_evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parametric::ParamKind;
    use dft::{DftBuilder, Dormancy};

    fn spare_tree(prefix: &str, rate: f64) -> Dft {
        let mut b = DftBuilder::new();
        let p = b
            .basic_event(&format!("{prefix}_P"), rate, Dormancy::Hot)
            .unwrap();
        let s = b
            .basic_event(&format!("{prefix}_S"), rate, Dormancy::Cold)
            .unwrap();
        let top = b.spare_gate(&format!("{prefix}_Top"), &[p, s]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn duplicate_trees_build_once() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 2,
            cache_capacity: 8,
            ..ServiceOptions::default()
        });
        let jobs: Vec<AnalysisJob> = (0..5)
            .map(|i| {
                AnalysisJob::new(
                    // Different names, identical structure: same fingerprint.
                    spare_tree(&format!("svc{i}"), 1.0),
                    AnalysisOptions::default(),
                    vec![Measure::Unreliability(1.0)],
                )
            })
            .collect();
        let report = service.run_batch(&jobs);
        assert_eq!(report.stats.jobs, 5);
        assert_eq!(report.stats.cache_misses, 1);
        assert_eq!(report.stats.cache_hits, 4);
        assert_eq!(report.stats.aggregation_runs, 1);
        assert_eq!(report.stats.workers, 2);
        let expected = 1.0 - 2.0 * (-1.0f64).exp();
        for job in &report.jobs {
            let results = job.results.as_ref().unwrap();
            assert_eq!(results.len(), 1);
            assert!((results[0].value() - expected).abs() < 1e-6);
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn submit_returns_immediately_and_handles_deliver() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 2,
            cache_capacity: 8,
            ..ServiceOptions::default()
        });
        let mut handles: Vec<JobHandle> = (0..4)
            .map(|i| {
                service.submit(AnalysisJob::new(
                    spare_tree(&format!("subm{i}"), 1.0 + i as f64),
                    AnalysisOptions::default(),
                    vec![Measure::Mttf],
                ))
            })
            .collect();
        assert_eq!(service.pool_workers(), 2);
        // Polling eventually observes the report, and wait() returns the same
        // one afterwards.
        let mut last = handles.pop().unwrap();
        while last.try_result().is_none() {
            thread::yield_now();
        }
        let mttf = last.try_result().unwrap().results.as_ref().unwrap()[0].value();
        assert!(mttf.is_finite() && mttf > 0.0);
        let report = last.wait();
        assert_eq!(report.results.unwrap()[0].value(), mttf);
        for handle in handles {
            assert!(handle.wait().results.is_ok());
        }
        // A handle can observe its report a moment before the worker records
        // the completion; the counter settles immediately after.
        while service.queue_stats().completed != 4 {
            thread::yield_now();
        }
        let queue = service.queue_stats();
        assert_eq!(queue.submitted, 4);
        assert_eq!(queue.pending, 0);
    }

    #[test]
    fn dropping_the_service_drains_pending_sweeps() {
        // A sweep claimed from the draining queue expands its point tasks
        // *after* shutdown began; the drain must still complete them and
        // deliver the report.
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        });
        let dft = spare_tree("drain_sweep", 1.0);
        let valuation = ParametricAnalyzer::new(&dft, AnalysisOptions::default())
            .unwrap()
            .params()
            .base_valuation();
        let handle = service.submit_sweep(SweepJob::new(
            dft,
            AnalysisOptions::default(),
            vec![Measure::Unreliability(1.0)],
            vec![valuation.clone(), valuation],
        ));
        drop(service);
        let report = handle.wait();
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(point.results.is_ok(), "drop must drain sweep points too");
        }
    }

    #[test]
    fn dropping_the_service_drains_outstanding_handles() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 8,
            ..ServiceOptions::default()
        });
        let handles: Vec<JobHandle> = (0..3)
            .map(|i| {
                service.submit(AnalysisJob::new(
                    spare_tree("drain", 1.0 + 0.5 * i as f64),
                    AnalysisOptions::default(),
                    vec![Measure::Unreliability(1.0)],
                ))
            })
            .collect();
        drop(service);
        for handle in handles {
            assert!(handle.wait().results.is_ok(), "drop must drain, not abort");
        }
    }

    #[test]
    fn method_and_epsilon_split_the_cache() {
        let service = AnalysisService::new(ServiceOptions::default());
        let dft = spare_tree("svc_key", 1.0);
        let compositional = AnalysisOptions::default();
        let monolithic = AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        };
        let loose = AnalysisOptions {
            epsilon: 1e-6,
            ..AnalysisOptions::default()
        };
        let a = service.analyzer(&dft, &compositional).unwrap();
        let b = service.analyzer(&dft, &monolithic).unwrap();
        let c = service.analyzer(&dft, &loose).unwrap();
        let a2 = service.analyzer(&dft, &compositional).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(service.cache_stats().entries, 3);
        assert_eq!(service.cache_stats().misses, 3);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 2,
            ..ServiceOptions::default()
        });
        let options = AnalysisOptions::default();
        let first = spare_tree("svc_lru_a", 1.0);
        let second = spare_tree("svc_lru_b", 2.0);
        let third = spare_tree("svc_lru_c", 3.0);
        service.analyzer(&first, &options).unwrap();
        service.analyzer(&second, &options).unwrap();
        // Touch `first` so `second` is the least recently used …
        service.analyzer(&first, &options).unwrap();
        // … and inserting `third` evicts `second`.
        service.analyzer(&third, &options).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(
            stats.parametric_evictions, 0,
            "session evictions must not leak into the parametric counter"
        );
        assert_eq!(stats.misses, 3);
        service.analyzer(&first, &options).unwrap();
        assert_eq!(service.cache_stats().hits, 2, "first survived the eviction");
        service.analyzer(&second, &options).unwrap();
        assert_eq!(service.cache_stats().misses, 4, "second was rebuilt");
    }

    /// An AND over `width` basic events: structurally distinct from
    /// [`spare_tree`] (and from other widths), whatever the names and rates.
    fn and_tree(prefix: &str, width: usize) -> Dft {
        let mut b = DftBuilder::new();
        let events: Vec<dft::ElementId> = (0..width)
            .map(|i| {
                b.basic_event(&format!("{prefix}_{i}"), 1.0, Dormancy::Hot)
                    .unwrap()
            })
            .collect();
        let top = b.and_gate(&format!("{prefix}_Top"), &events).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn parametric_evictions_are_counted_separately() {
        // Capacity 1 on both key spaces: sweeping two structurally distinct
        // trees (one valuation each) evicts one parametric model *and* one
        // instantiated session, each into its own counter.
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 1,
            ..ServiceOptions::default()
        });
        let options = AnalysisOptions::default();
        for width in [2, 3] {
            let dft = and_tree("svc_pe", width);
            let valuation = ParametricAnalyzer::new(&dft, options.clone())
                .unwrap()
                .params()
                .base_valuation();
            let report = service.run_sweep(&SweepJob::new(
                dft,
                options.clone(),
                vec![Measure::Unreliability(1.0)],
                vec![valuation],
            ));
            assert!(report.points[0].results.is_ok());
        }
        let stats = service.cache_stats();
        assert_eq!(stats.parametric_misses, 2);
        assert_eq!(stats.parametric_entries, 1);
        assert_eq!(
            stats.parametric_evictions, 1,
            "one parametric model evicted"
        );
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1, "one instantiated session evicted");
    }

    #[test]
    fn scale_specs_match_explicit_scaled_valuations() {
        // A symbolic FailureScales spec, resolved on the pool, must be
        // bit-identical to the classic path where the caller builds the
        // scaled valuations against the ParamTable itself.
        let service = AnalysisService::new(ServiceOptions {
            workers: 2,
            cache_capacity: 16,
            ..ServiceOptions::default()
        });
        let dft = spare_tree("svc_spec", 1.0);
        let options = AnalysisOptions::default();
        let measures = vec![Measure::Unreliability(1.0), Measure::Mttf];
        let scales = vec![0.5, 1.0, 2.0];

        let table = ParametricAnalyzer::new(&dft, options.clone())
            .unwrap()
            .params()
            .clone();
        let explicit = service.run_sweep(&SweepJob::new(
            dft.clone(),
            options.clone(),
            measures.clone(),
            scales.iter().map(|&s| table.scaled_valuation(s)).collect(),
        ));

        let symbolic = service
            .submit_sweep_spec(dft, options, measures, SweepSpec::FailureScales(scales))
            .wait();

        assert_eq!(symbolic.points.len(), explicit.points.len());
        for (a, b) in symbolic.points.iter().zip(&explicit.points) {
            assert_eq!(a.valuation_fingerprint, b.valuation_fingerprint);
            let (a, b) = (a.results.as_ref().unwrap(), b.results.as_ref().unwrap());
            for (ra, rb) in a.iter().zip(b) {
                for (pa, pb) in ra.points().iter().zip(rb.points()) {
                    assert_eq!(pa.value().to_bits(), pb.value().to_bits());
                }
            }
        }
        // The second sweep instantiated nothing new: every valuation was
        // already cached from the explicit run.
        assert_eq!(symbolic.stats.cache_hits, symbolic.stats.valuations);
    }

    #[test]
    fn element_specs_resolve_by_name_and_report_unknowns_per_point() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 16,
            ..ServiceOptions::default()
        });
        let options = AnalysisOptions::default();
        let measures = vec![Measure::Unreliability(1.0)];

        // Sweeping a real element's failure rate produces distinct,
        // monotonically worsening unreliabilities.
        let report = service
            .submit_sweep_spec(
                spare_tree("svc_elem", 1.0),
                options.clone(),
                measures.clone(),
                SweepSpec::Element {
                    element: "svc_elem_P".to_owned(),
                    kind: ParamKind::Failure,
                    values: vec![0.5, 1.0, 2.0],
                },
            )
            .wait();
        let values: Vec<f64> = report
            .points
            .iter()
            .map(|p| p.results.as_ref().unwrap()[0].value())
            .collect();
        assert!(values[0] < values[1] && values[1] < values[2]);

        // An unknown element is a per-point InvalidValuation error — the
        // sweep completes, nothing panics, and the handle still delivers.
        let report = service
            .submit_sweep_spec(
                spare_tree("svc_elem", 1.0),
                options,
                measures,
                SweepSpec::Element {
                    element: "no_such_event".to_owned(),
                    kind: ParamKind::Failure,
                    values: vec![1.0, 2.0],
                },
            )
            .wait();
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert!(matches!(point.results, Err(Error::InvalidValuation { .. })));
        }
    }

    #[test]
    fn job_errors_are_reported_in_place() {
        // A query error (unavailability on a non-repairable tree) must not
        // abort the batch: the failing job reports its error, the rest run.
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 4,
            ..ServiceOptions::default()
        });
        let jobs = vec![
            AnalysisJob::new(
                spare_tree("svc_err_a", 1.0),
                AnalysisOptions::default(),
                vec![Measure::Unavailability],
            ),
            AnalysisJob::new(
                spare_tree("svc_err_b", 2.0),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            ),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.jobs[0].results.is_err(), "not repairable");
        assert!(report.jobs[1].results.is_ok());
        assert_eq!(report.stats.jobs, 2);
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let service = AnalysisService::new(ServiceOptions::default());

        // Empty batch: no report rows, no cache traffic — and no worker
        // thread is ever spawned (the pool starts on the first real job).
        let report = service.run_batch(&[]);
        assert_eq!(report.stats.jobs, 0);
        assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 0);
        assert_eq!(report.stats.workers, 0);
        assert!(report.jobs.is_empty());
        assert_eq!(service.pool_workers(), 0, "empty batches must not spawn");

        // Empty sweep: same contract — in particular the parametric model is
        // *not* built just to answer zero valuations.
        let sweep = service.run_sweep(&SweepJob::new(
            spare_tree("svc_empty", 1.0),
            AnalysisOptions::default(),
            vec![Measure::Unreliability(1.0)],
            Vec::new(),
        ));
        assert!(sweep.points.is_empty());
        assert_eq!(sweep.stats.valuations, 0);
        assert_eq!(sweep.stats.aggregation_runs, 0);
        assert_eq!(sweep.stats.workers, 0);
        assert_eq!(service.cache_stats().parametric_entries, 0);
        assert_eq!(service.pool_workers(), 0, "empty sweeps must not spawn");
        assert_eq!(service.queue_stats().submitted, 0);

        // The first real submission starts the pool and still works.
        let handle = service.submit(AnalysisJob::new(
            spare_tree("svc_empty", 1.0),
            AnalysisOptions::default(),
            vec![Measure::Unreliability(1.0)],
        ));
        assert!(service.pool_workers() > 0);
        assert!(handle.wait().results.is_ok());
    }
}
