//! The persistent job queue the worker pool drains.
//!
//! One long-lived [`JobQueue`] connects any number of submitting threads to the
//! pool: [`push`](JobQueue::push) enqueues under the mutex and signals the
//! condvar, [`claim`](JobQueue::claim) blocks — **timeout-free** — until a task
//! is claimable or shutdown drains the queue empty.  Every transition that can
//! make work available (a submission, a leader releasing its parked followers,
//! shutdown) happens under the same lock and notifies the condvar, so no wakeup
//! can be lost and no worker ever has to poll.  This replaces the scoped
//! per-batch pool whose idle loop papered over exactly that race with a 1 ms
//! `wait_timeout` busy-poll.
//!
//! # Cache-aware leader/follower scheduling
//!
//! Tasks for the same [`CacheKey`] must not race: the second worker would block
//! inside the cache's `OnceLock` for the whole build
//! ([`BatchStats::build_waits`](super::BatchStats::build_waits)).  The queue
//! ports the grouped dispatch of the old `run_batch` to the streaming setting:
//!
//! * the first claimant of a key whose session is not built yet becomes the
//!   **leader** — the key enters the `building` set and the worker builds (and
//!   queries) alone;
//! * tasks for a key in `building` are **parked** per key instead of claimed;
//! * when the leader completes, its parked followers are *released* to the
//!   front of the ready queue — they are warm cache hits now and any number of
//!   workers may serve them in parallel;
//! * tasks for a key whose session is already built skip the protocol entirely.

use super::handle::SweepState;
use super::{AnalysisJob, CacheKey, JobReport};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};

/// One unit of queued work.
#[derive(Debug)]
pub(super) enum Task {
    /// A batch job: build-or-fetch the session, answer the measures, send the
    /// report to the submitting handle.
    Job {
        /// The job to run, boxed so queued tasks stay uniformly small
        /// (`AnalysisJob` carries a whole `Dft`).
        job: Box<AnalysisJob>,
        /// The job's cache key, computed once at submission.
        key: CacheKey,
        /// Delivers the [`JobReport`] to the job's handle.
        tx: Sender<JobReport>,
    },
    /// The head task of a sweep: build-or-fetch the parametric model, then
    /// expand one [`Task::SweepPoint`] per valuation.
    SweepStart {
        /// The shared sweep bookkeeping.
        state: Arc<SweepState>,
    },
    /// One valuation of a sweep.
    SweepPoint {
        /// The shared sweep bookkeeping.
        state: Arc<SweepState>,
        /// Index into the sweep's valuation list.
        index: usize,
    },
}

/// A claimed task plus the leadership it carries: `leader_of` is `Some(key)`
/// when this worker owns the in-flight build of `key` and must report back via
/// [`JobQueue::complete`] so parked followers are released.
#[derive(Debug)]
pub(super) struct Claim {
    pub(super) task: Task,
    pub(super) leader_of: Option<CacheKey>,
}

/// Cumulative counters of the service's job queue.
///
/// `parked`/`released` make the leader/follower protocol observable: a
/// duplicate job that arrives while its model is in flight is parked exactly
/// once and released exactly once, instead of blocking a worker on the build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Tasks ever enqueued (batch jobs, sweep heads and sweep points).
    pub submitted: u64,
    /// Tasks that finished executing.
    pub completed: u64,
    /// Tasks currently queued, parked or executing.
    pub pending: usize,
    /// Tasks ever parked behind an in-flight build of their model.
    pub parked: u64,
    /// Parked tasks re-released after their leader finished.
    pub released: u64,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Tasks any worker may claim, FIFO.
    ready: VecDeque<Task>,
    /// Keys whose session is being built by a leader right now.
    building: HashSet<CacheKey>,
    /// Followers parked per in-flight key, released when the leader completes.
    parked: HashMap<CacheKey, Vec<Task>>,
    /// Number of tasks currently parked (the map's total payload).
    parked_count: usize,
    /// Tasks submitted but not yet completed — tracked under this lock, so the
    /// shutdown drain and the idle predicate never race a submission.
    pending: usize,
    /// Set once by the service's `Drop`; workers drain and exit.
    shutdown: bool,
    submitted: u64,
    completed: u64,
    parked_total: u64,
    released_total: u64,
}

/// The Mutex+Condvar work queue shared by all workers of a service.
#[derive(Debug, Default)]
pub(super) struct JobQueue {
    state: Mutex<QueueState>,
    /// Signalled on every submission, release and shutdown — always under the
    /// state lock, so a worker that observed "nothing claimable" and went to
    /// sleep cannot miss the wakeup.
    ready: Condvar,
}

impl JobQueue {
    /// Enqueues one task and wakes a worker.
    pub(super) fn push(&self, task: Task) {
        let mut state = self.state.lock().expect("queue lock");
        debug_assert!(!state.shutdown, "no submissions after shutdown");
        state.ready.push_back(task);
        state.pending += 1;
        state.submitted += 1;
        self.ready.notify_one();
    }

    /// Enqueues a batch of tasks and wakes every worker.
    ///
    /// Unlike [`push`](Self::push), this is legal *during* shutdown: a sweep
    /// head claimed from the draining queue still expands its point tasks
    /// here, and the drain completes them (the expanding worker at minimum
    /// keeps claiming until the queue is truly empty).
    pub(super) fn push_many(&self, tasks: Vec<Task>) {
        let mut state = self.state.lock().expect("queue lock");
        let n = tasks.len();
        state.ready.extend(tasks);
        state.pending += n;
        state.submitted += n as u64;
        self.ready.notify_all();
    }

    /// Blocks until a task is claimable and returns it, or `None` when the
    /// queue has shut down and drained.
    ///
    /// `is_built` reports whether the session for a key is already available in
    /// the service cache (claiming a built key needs no leader).  The waits are
    /// plain [`Condvar::wait`] — no timeout, no polling: every state change
    /// that could unblock this worker notifies the condvar under the lock.
    pub(super) fn claim(&self, is_built: impl Fn(&CacheKey) -> bool) -> Option<Claim> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            while let Some(task) = state.ready.pop_front() {
                let key = match &task {
                    Task::Job { key, .. } => *key,
                    // Sweep tasks coordinate through their own shared state
                    // and never block on a batch build: claim directly.
                    _ => {
                        return Some(Claim {
                            task,
                            leader_of: None,
                        })
                    }
                };
                if state.building.contains(&key) {
                    // A leader is building this model right now: parking the
                    // duplicate keeps this worker free for other groups, where
                    // claiming it would leave the worker blocking inside the
                    // cache slot's `OnceLock` for the whole build.
                    state.parked_count += 1;
                    state.parked_total += 1;
                    state.parked.entry(key).or_default().push(task);
                    continue;
                }
                if !is_built(&key) {
                    state.building.insert(key);
                    return Some(Claim {
                        task,
                        leader_of: Some(key),
                    });
                }
                return Some(Claim {
                    task,
                    leader_of: None,
                });
            }
            // Nothing claimable.  Parked tasks are owed a release notification
            // by their (still running) leader, so only an empty park means the
            // drain is complete.  Tasks still *executing* on other workers add
            // no new batch work except through `complete` (which notifies) or
            // sweep expansion (whose worker keeps draining itself).
            if state.shutdown && state.parked_count == 0 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Marks a claimed task as finished.  A leader's completion releases its
    /// parked followers to the *front* of the ready queue (they are warm cache
    /// hits) and wakes every worker.
    pub(super) fn complete(&self, leader_of: Option<CacheKey>) {
        let mut state = self.state.lock().expect("queue lock");
        state.pending -= 1;
        state.completed += 1;
        if let Some(key) = leader_of {
            state.building.remove(&key);
            if let Some(tasks) = state.parked.remove(&key) {
                state.parked_count -= tasks.len();
                state.released_total += tasks.len() as u64;
                for task in tasks.into_iter().rev() {
                    state.ready.push_front(task);
                }
            }
        }
        self.ready.notify_all();
    }

    /// Initiates shutdown: workers drain the remaining work and exit.
    pub(super) fn begin_shutdown(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.shutdown = true;
        self.ready.notify_all();
    }

    /// Snapshot of the cumulative queue counters.
    pub(super) fn stats(&self) -> QueueStats {
        let state = self.state.lock().expect("queue lock");
        QueueStats {
            submitted: state.submitted,
            completed: state.completed,
            pending: state.pending,
            parked: state.parked_total,
            released: state.released_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{AnalysisOptions, Method};
    use std::sync::mpsc;
    use std::thread;

    fn tiny_dft() -> dft::Dft {
        dft::galileo::parse(concat!(
            "toplevel \"T\";\n",
            "\"T\" and \"A\" \"B\";\n",
            "\"A\" lambda=1.0;\n",
            "\"B\" lambda=1.0;\n",
        ))
        .expect("the fixture tree is valid")
    }

    /// A job task whose cache key carries the given fingerprint; the paired
    /// receiver keeps the report channel alive for the test's duration.
    fn job(fingerprint: u64) -> (Task, CacheKey, mpsc::Receiver<JobReport>) {
        let key = CacheKey {
            fingerprint,
            method: Method::Compositional,
            epsilon_bits: 0,
            valuation: None,
        };
        let (tx, rx) = mpsc::channel();
        let task = Task::Job {
            job: Box::new(AnalysisJob::new(
                tiny_dft(),
                AnalysisOptions::default(),
                Vec::new(),
            )),
            key,
            tx,
        };
        (task, key, rx)
    }

    fn key_of(claim: &Claim) -> u64 {
        match &claim.task {
            Task::Job { key, .. } => key.fingerprint,
            other => panic!("expected a job task, got {other:?}"),
        }
    }

    #[test]
    fn claims_in_fifo_order_when_sessions_are_built() {
        let queue = JobQueue::default();
        let mut rxs = Vec::new();
        for fp in 0..3 {
            let (task, _, rx) = job(fp);
            queue.push(task);
            rxs.push(rx);
        }
        for fp in 0..3 {
            let claim = queue.claim(|_| true).expect("queue holds a task");
            assert_eq!(key_of(&claim), fp);
            assert_eq!(claim.leader_of, None, "built keys need no leader");
            queue.complete(claim.leader_of);
        }
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.completed), (3, 3));
        assert_eq!((stats.pending, stats.parked, stats.released), (0, 0, 0));
    }

    #[test]
    fn first_claim_of_an_unbuilt_key_becomes_leader() {
        let queue = JobQueue::default();
        let (task, key, _rx) = job(7);
        queue.push(task);
        let claim = queue.claim(|_| false).expect("queue holds a task");
        assert_eq!(claim.leader_of, Some(key));
        queue.complete(claim.leader_of);
    }

    #[test]
    fn duplicate_keys_park_behind_the_leader_and_release_to_the_front() {
        let queue = JobQueue::default();
        let (first, key, _rx1) = job(1);
        let (duplicate, _, _rx2) = job(1);
        let (other, other_key, _rx3) = job(2);
        queue.push(first);
        queue.push(duplicate);
        queue.push(other);

        let leader = queue.claim(|_| false).expect("first task");
        assert_eq!(leader.leader_of, Some(key));

        // The duplicate is skipped (parked) and the next claim jumps to the
        // unrelated key, keeping this worker busy during the build.
        let unrelated = queue.claim(|_| false).expect("second claimable task");
        assert_eq!(unrelated.leader_of, Some(other_key));
        assert_eq!(queue.stats().parked, 1);

        // The leader finishing releases the parked follower to the front; it
        // is a warm hit now, so no new leadership is taken.
        queue.complete(leader.leader_of);
        let follower = queue.claim(|k| *k == key).expect("released follower");
        assert_eq!(key_of(&follower), 1);
        assert_eq!(follower.leader_of, None);
        queue.complete(follower.leader_of);
        queue.complete(unrelated.leader_of);

        let stats = queue.stats();
        assert_eq!((stats.parked, stats.released), (1, 1));
        assert_eq!((stats.pending, stats.completed), (0, 3));
    }

    #[test]
    fn shutdown_drains_remaining_work_then_returns_none() {
        let queue = JobQueue::default();
        let (task, _, _rx) = job(1);
        queue.push(task);
        queue.begin_shutdown();
        let claim = queue.claim(|_| true).expect("shutdown still drains");
        queue.complete(claim.leader_of);
        assert!(queue.claim(|_| true).is_none());
        assert!(queue.claim(|_| true).is_none(), "drained stays drained");
    }

    /// Multi-threaded drain: several workers block in `claim`, the submitter
    /// pushes a batch and shuts down, and every task is completed exactly once.
    /// Bounded counts keep this runnable under Miri.
    #[test]
    fn workers_drain_a_batch_without_polling() {
        const WORKERS: usize = 3;
        const JOBS: u64 = 12;
        let queue = Arc::new(JobQueue::default());
        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut served = 0u64;
                    while let Some(claim) = queue.claim(|_| true) {
                        served += 1;
                        queue.complete(claim.leader_of);
                    }
                    served
                })
            })
            .collect();

        let mut rxs = Vec::new();
        for fp in 0..JOBS {
            let (task, _, rx) = job(fp);
            queue.push(task);
            rxs.push(rx);
        }
        queue.begin_shutdown();

        let served: u64 = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .sum();
        assert_eq!(served, JOBS);
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.completed), (JOBS, JOBS));
        assert_eq!(stats.pending, 0);
    }
}
