//! Compositional aggregation (Section 5 of the paper).
//!
//! The conversion/analysis algorithm of the paper alternates three operations until
//! a single I/O-IMC remains:
//!
//! 1. pick two members of the community and compose them in parallel,
//! 2. hide every output signal that no remaining member listens to (and that the
//!    analysis does not need to observe),
//! 3. aggregate the result modulo weak bisimulation.
//!
//! The composition *order* does not affect the result but strongly affects the peak
//! intermediate size.  The heuristic used here prefers pairs that actually
//! communicate (one's output is the other's input — composing unrelated components
//! only multiplies state counts) and, among those, the pair with the smallest
//! estimated product, which in practice composes each sub-tree bottom-up before
//! sub-trees are combined — the strategy the paper applies manually to its case
//! studies.

use crate::Result;
use ioimc::bisim::minimize;
use ioimc::compose::compose;
use ioimc::hide::hide;
use ioimc::stats::ModelStats;
use ioimc::{Action, IoImcOf, Rate};
use std::collections::BTreeSet;

/// Statistics of one composition step.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Names of the two models composed in this step.
    pub composed: (String, String),
    /// Size of the product before hiding/aggregation.
    pub before_aggregation: ModelStats,
    /// Size after hiding and weak-bisimulation aggregation.
    pub after_aggregation: ModelStats,
    /// Actions hidden after this composition step.
    pub hidden: usize,
}

/// Statistics of a full compositional-aggregation run.
#[derive(Debug, Clone, Default)]
pub struct AggregationStats {
    /// Per-step statistics, in composition order.
    pub steps: Vec<StepStats>,
    /// Componentwise maximum over every intermediate model (the paper's headline
    /// metric: the peak state/transition count encountered during analysis).
    pub peak: ModelStats,
    /// Size of the final aggregated model.
    pub final_model: ModelStats,
}

impl AggregationStats {
    fn record_intermediate(&mut self, stats: ModelStats) {
        self.peak = self.peak.max(stats);
    }
}

/// Options controlling the aggregation loop.
#[derive(Debug, Clone)]
pub struct AggregationOptions {
    /// Output actions that must stay observable (typically the top event's failure
    /// and, for repairable models, its repair signal).
    pub keep: Vec<Action>,
    /// Whether every elementary model is minimised before composition starts.
    pub minimize_elements: bool,
}

impl Default for AggregationOptions {
    fn default() -> Self {
        AggregationOptions {
            keep: Vec::new(),
            minimize_elements: true,
        }
    }
}

/// Runs compositional aggregation on a community of I/O-IMCs and returns the final
/// aggregated model together with size statistics.
///
/// # Errors
///
/// Propagates composition errors (incompatible signatures); a community produced by
/// [`convert`](crate::convert::convert) never triggers them.
///
/// # Panics
///
/// Panics if the community is empty.
pub fn aggregate<R: Rate>(
    models: &[IoImcOf<R>],
    options: &AggregationOptions,
) -> Result<(IoImcOf<R>, AggregationStats)> {
    assert!(!models.is_empty(), "cannot aggregate an empty community");
    let keep: BTreeSet<Action> = options.keep.iter().copied().collect();

    let mut stats = AggregationStats::default();
    let mut community: Vec<IoImcOf<R>> = if options.minimize_elements {
        models.iter().map(minimize).collect()
    } else {
        models.to_vec()
    };
    for m in &community {
        stats.record_intermediate(ModelStats::of(m));
    }

    while community.len() > 1 {
        let (i, j) = pick_pair(&community);
        let right = community.swap_remove(j.max(i));
        let left = community.swap_remove(j.min(i));
        let names = (left.name().to_owned(), right.name().to_owned());

        let composed = compose(&left, &right)?;
        stats.record_intermediate(ModelStats::of(&composed));
        let before_aggregation = ModelStats::of(&composed);

        // Hide outputs that no remaining community member listens to and that the
        // analysis does not need to keep observable.
        let needed: BTreeSet<Action> = community
            .iter()
            .flat_map(|m| m.signature().inputs().collect::<Vec<_>>())
            .chain(keep.iter().copied())
            .collect();
        let to_hide: Vec<Action> = composed
            .signature()
            .outputs()
            .filter(|a| !needed.contains(a))
            .collect();
        let hidden = hide(&composed, &to_hide)?;
        let reduced = minimize(&hidden);
        stats.record_intermediate(ModelStats::of(&reduced));
        stats.steps.push(StepStats {
            composed: names,
            before_aggregation,
            after_aggregation: ModelStats::of(&reduced),
            hidden: to_hide.len(),
        });
        community.push(reduced);
    }

    let final_model = community.pop().expect("one model remains");
    stats.final_model = ModelStats::of(&final_model);
    Ok((final_model, stats))
}

/// Chooses the next pair of community members to compose.
///
/// Pairs that communicate (one's outputs intersect the other's inputs) are
/// preferred; among candidates the pair with the smallest product of state counts
/// wins.  Ties are broken deterministically by index.
fn pick_pair<R: Rate>(community: &[IoImcOf<R>]) -> (usize, usize) {
    let n = community.len();
    debug_assert!(n >= 2);
    let mut best: Option<(bool, usize, usize, usize)> = None; // (communicates, cost, i, j)
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &community[i];
            let b = &community[j];
            let communicates = a.signature().outputs().any(|o| b.signature().is_input(o))
                || b.signature().outputs().any(|o| a.signature().is_input(o));
            let cost = a.num_states().saturating_mul(b.num_states());
            let candidate = (communicates, cost, i, j);
            best = Some(match best {
                None => candidate,
                Some(current) => {
                    // Prefer communicating pairs, then lower cost, then lower index.
                    let better = match (candidate.0, current.0) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => candidate.1 < current.1,
                    };
                    if better {
                        candidate
                    } else {
                        current
                    }
                }
            });
        }
    }
    let (_, _, i, j) = best.expect("at least one pair exists");
    (i, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use dft::{DftBuilder, Dormancy};
    use ioimc::closed::{can_fire_immediately, drop_input_transitions};
    use ioimc::IoImcBuilder;

    #[test]
    fn aggregating_a_simple_and_tree_yields_a_small_model() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("ag_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("ag_Y", 2.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("ag_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        let options = AggregationOptions {
            keep: vec![community.top_failure],
            ..AggregationOptions::default()
        };
        let (final_model, stats) = aggregate(&community.models, &options).unwrap();
        assert!(final_model.validate().is_ok());
        // The final model keeps the top failure observable.
        assert!(final_model.signature().is_output(community.top_failure));
        // Two independent exponential failures then the AND fires: the aggregated
        // model needs only a handful of states.
        assert!(
            final_model.num_states() <= 6,
            "got {}",
            final_model.num_states()
        );
        assert_eq!(stats.steps.len(), 2);
        assert!(stats.peak.states >= final_model.num_states());
        assert!(stats.final_model.states > 0);
    }

    #[test]
    fn aggregation_is_insensitive_to_community_order() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("ag2_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("ag2_Y", 2.0, Dormancy::Hot).unwrap();
        let z = b.basic_event("ag2_Z", 3.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("ag2_Top", &[x, y, z]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        let options = AggregationOptions {
            keep: vec![community.top_failure],
            ..AggregationOptions::default()
        };
        let (forward, _) = aggregate(&community.models, &options).unwrap();
        let mut reversed = community.models.clone();
        reversed.reverse();
        let (backward, _) = aggregate(&reversed, &options).unwrap();
        assert_eq!(forward.num_states(), backward.num_states());
        assert_eq!(forward.num_transitions(), backward.num_transitions());
    }

    #[test]
    fn kept_actions_are_not_hidden() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("ag3_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("ag3_Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("ag3_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        let no_keep = aggregate(&community.models, &AggregationOptions::default())
            .unwrap()
            .0;
        // Without a keep set every output ends up hidden.
        assert_eq!(no_keep.signature().num_outputs(), 0);
        let with_keep = aggregate(
            &community.models,
            &AggregationOptions {
                keep: vec![community.top_failure],
                ..AggregationOptions::default()
            },
        )
        .unwrap()
        .0;
        assert!(with_keep.signature().is_output(community.top_failure));
    }

    #[test]
    fn pick_pair_prefers_communicating_models() {
        // Two communicating tiny models and one unrelated big model.
        let ping = Action::new("ag4_ping");
        let mut a = IoImcBuilder::new("sender");
        let s = a.add_states(2);
        a.initial(s[0]);
        a.output(s[0], ping, s[1]);
        let sender = a.build().unwrap();

        let mut b = IoImcBuilder::new("receiver");
        let t = b.add_states(2);
        b.initial(t[0]);
        b.input(t[0], ping, t[1]);
        let receiver = b.build().unwrap();

        let mut c = IoImcBuilder::new("bystander");
        let u = c.add_states(2);
        c.initial(u[0]);
        c.markovian(u[0], 1.0, u[1]);
        let bystander = c.build().unwrap();

        let community = vec![sender, bystander, receiver];
        let (i, j) = pick_pair(&community);
        let names = [community[i].name(), community[j].name()];
        assert!(names.contains(&"sender"));
        assert!(names.contains(&"receiver"));
    }

    #[test]
    fn aggregated_or_tree_fails_at_the_first_event() {
        // Sanity-check the semantics end to end at the I/O-IMC level: an OR of two
        // events can fire the top failure right after the first Markovian delay.
        let mut b = DftBuilder::new();
        let x = b.basic_event("ag5_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("ag5_Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("ag5_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        let (final_model, _) = aggregate(
            &community.models,
            &AggregationOptions {
                keep: vec![community.top_failure],
                ..AggregationOptions::default()
            },
        )
        .unwrap();
        let closed = drop_input_transitions(&final_model);
        let goal = can_fire_immediately(&closed, community.top_failure);
        // From the initial state one Markovian step must reach a goal state.
        let initial = closed.initial();
        assert!(!goal[initial.index()]);
        assert!(closed
            .markovian_from(initial)
            .iter()
            .all(|t| goal[t.to.index()]));
        // Total initial rate is 2 (two hot events racing).
        let rate: f64 = closed.markovian_from(initial).iter().map(|t| t.rate).sum();
        assert!((rate - 2.0).abs() < 1e-9);
    }
}
