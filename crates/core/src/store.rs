//! The persistent cross-process model cache.
//!
//! Compositional aggregation (convert → compose → hide → lump) is by far the
//! dominant cost per DFT, and it is fully determined by the tree's structure:
//! [`Dft::fingerprint`](dft::Dft::fingerprint) and
//! [`Dft::structural_fingerprint`](dft::Dft::structural_fingerprint) are stable
//! across processes and platforms by construction.  A [`ModelStore`] therefore
//! serializes *closed* models — the final minimised I/O-IMC with its can/must
//! CTMDP pair and goal vectors, or the parametric quotient with its
//! [`ParamTable`](crate::parametric::ParamTable) — into a directory shared
//! between runs and between a fleet of analysis servers, turning a restart
//! from N full aggregations into N disk reads.
//!
//! # Entry format
//!
//! Every entry is one file:
//!
//! ```text
//! magic "DFTM" | format version u32 | kind u8 | fingerprint u64 |
//! epsilon bits u64 | payload length u64 | payload FNV-1a checksum u64 | payload
//! ```
//!
//! The payload is the [`Analyzer::to_bytes`](crate::engine::Analyzer) /
//! [`ParametricAnalyzer`] body built on the
//! rate-generic [`ioimc::codec`].  Readers reject — and callers then rebuild —
//! on *any* mismatch: wrong magic or version, foreign fingerprint, different
//! ε, short file, checksum failure, or a payload that decodes but fails model
//! validation.  Rejections are counted in [`StoreStats::rejected`]; they are
//! never errors on the cache path.
//!
//! # Concurrency
//!
//! Writers serialize to a temporary file in the store directory and publish
//! it with an atomic `rename`, so a concurrent reader (another process, or
//! another service sharing the directory) either sees the complete entry or
//! none at all — never a torn write.  Last writer wins; entries for one key
//! are deterministic, so the race is benign.
//!
//! # Errors
//!
//! Only the *explicit* [`ModelStore`] API ([`save_analyzer`],
//! [`save_parametric`], [`ModelStore::open`]) reports typed
//! [`Error::Store`] failures.  The [`AnalysisService`](crate::service) cache
//! path treats every store problem as a miss (load) or a skipped write-back
//! (save) and keeps serving from memory.
//!
//! [`save_analyzer`]: ModelStore::save_analyzer
//! [`save_parametric`]: ModelStore::save_parametric

use crate::aggregate::{AggregationStats, StepStats};
use crate::analysis::{AnalysisOptions, Method};
use crate::engine::{Analyzer, ParametricAnalyzer};
use crate::{Error, Result};
use dft::modules::ModuleStats;
use ioimc::codec::{DecodeError, DecodeResult, Reader, Writer};
use ioimc::stats::ModelStats;
use markov::ctmdp::{Ctmdp, CtmdpState};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File magic: "DFTM" (dynamic fault tree model).
const MAGIC: [u8; 4] = *b"DFTM";

/// Version of the on-disk format.  Bumped on any incompatible layout change;
/// readers reject every version but their own (a stale entry is rebuilt and
/// overwritten, never migrated in place).
pub const FORMAT_VERSION: u32 = 1;

/// What an entry holds; part of the frame so a session entry renamed onto a
/// parametric path (or vice versa) is rejected instead of misdecoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// A numeric closed model (an [`Analyzer`] payload).
    Session,
    /// A parametric closed model (a [`ParametricAnalyzer`] payload).
    Parametric,
}

impl Kind {
    fn tag(self) -> u8 {
        match self {
            Kind::Session => 1,
            Kind::Parametric => 2,
        }
    }

    fn prefix(self) -> char {
        match self {
            Kind::Session => 's',
            Kind::Parametric => 'p',
        }
    }
}

/// FNV-1a over a byte slice: the payload checksum.  Not cryptographic — it
/// guards against torn or bit-rotted files, not adversaries (the store
/// directory is trusted infrastructure, like the build cache it is).
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Frames a payload: magic, version, kind, identity, length, checksum, body.
pub(crate) fn seal(kind: Kind, fingerprint: u64, epsilon_bits: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u8(kind.tag());
    w.u64(fingerprint);
    w.u64(epsilon_bits);
    w.len_prefix(payload.len());
    w.u64(fnv1a64(payload));
    w.bytes(payload);
    w.into_bytes()
}

/// Opens a frame and returns its payload slice.  `expected` carries the
/// fingerprint and ε-bits the caller is looking up; `None` (the
/// `from_bytes` path) accepts any identity but still verifies magic,
/// version, kind, length and checksum.
pub(crate) fn unseal(
    bytes: &[u8],
    kind: Kind,
    expected: Option<(u64, u64)>,
) -> DecodeResult<&[u8]> {
    let mut r = Reader::new(bytes);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8()?;
    }
    if magic != MAGIC {
        return Err(DecodeError::new("bad magic: not a model-store entry"));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::new(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let tag = r.u8()?;
    if tag != kind.tag() {
        return Err(DecodeError::new(format!(
            "entry kind {tag} where {} was expected",
            kind.tag()
        )));
    }
    let fingerprint = r.u64()?;
    let epsilon_bits = r.u64()?;
    if let Some((expected_fp, expected_eps)) = expected {
        if fingerprint != expected_fp {
            return Err(DecodeError::new(format!(
                "fingerprint {fingerprint:016x} does not match the requested {expected_fp:016x}"
            )));
        }
        if epsilon_bits != expected_eps {
            return Err(DecodeError::new("entry was built with a different epsilon"));
        }
    }
    let len = r.len_prefix(0)?;
    let checksum = r.u64()?;
    if r.remaining() != len {
        return Err(DecodeError::new(format!(
            "payload length {len} disagrees with the {} bytes present",
            r.remaining()
        )));
    }
    // `remaining == len` was just checked, so the suffix exists; go through
    // get() anyway so a future refactor cannot reintroduce a panic here.
    let payload = bytes
        .len()
        .checked_sub(len)
        .and_then(|start| bytes.get(start..))
        .ok_or_else(|| DecodeError::new("payload length exceeds the entry"))?;
    if fnv1a64(payload) != checksum {
        return Err(DecodeError::new("payload checksum mismatch"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Shared payload helpers (used by the engine's to_bytes/from_bytes codecs).
// ---------------------------------------------------------------------------

pub(crate) fn encode_method(method: Method, w: &mut Writer) {
    w.u8(match method {
        Method::Compositional => 0,
        Method::Monolithic => 1,
        Method::Hybrid => 2,
    });
}

pub(crate) fn decode_method(r: &mut Reader<'_>) -> DecodeResult<Method> {
    match r.u8()? {
        0 => Ok(Method::Compositional),
        1 => Ok(Method::Monolithic),
        2 => Ok(Method::Hybrid),
        other => Err(DecodeError::new(format!("invalid method tag {other}"))),
    }
}

pub(crate) fn encode_options(options: &AnalysisOptions, w: &mut Writer) {
    w.f64(options.epsilon);
    encode_method(options.method, w);
}

pub(crate) fn decode_options(r: &mut Reader<'_>) -> DecodeResult<AnalysisOptions> {
    let epsilon = r.f64()?;
    let method = decode_method(r)?;
    Ok(AnalysisOptions { epsilon, method })
}

pub(crate) fn encode_model_stats(stats: ModelStats, w: &mut Writer) {
    w.len_prefix(stats.states);
    w.len_prefix(stats.interactive_transitions);
    w.len_prefix(stats.markovian_transitions);
    w.len_prefix(stats.inputs);
    w.len_prefix(stats.outputs);
    w.len_prefix(stats.internals);
}

pub(crate) fn decode_model_stats(r: &mut Reader<'_>) -> DecodeResult<ModelStats> {
    Ok(ModelStats {
        states: r.len_prefix(0)?,
        interactive_transitions: r.len_prefix(0)?,
        markovian_transitions: r.len_prefix(0)?,
        inputs: r.len_prefix(0)?,
        outputs: r.len_prefix(0)?,
        internals: r.len_prefix(0)?,
    })
}

pub(crate) fn encode_module_stats(stats: ModuleStats, w: &mut Writer) {
    w.len_prefix(stats.total_elements);
    w.len_prefix(stats.static_modules);
    w.len_prefix(stats.dynamic_modules);
    w.len_prefix(stats.static_modules_retained);
    w.len_prefix(stats.crown_elements);
    w.len_prefix(stats.core_count);
    w.len_prefix(stats.core_elements);
}

pub(crate) fn decode_module_stats(r: &mut Reader<'_>) -> DecodeResult<ModuleStats> {
    Ok(ModuleStats {
        total_elements: r.len_prefix(0)?,
        static_modules: r.len_prefix(0)?,
        dynamic_modules: r.len_prefix(0)?,
        static_modules_retained: r.len_prefix(0)?,
        crown_elements: r.len_prefix(0)?,
        core_count: r.len_prefix(0)?,
        core_elements: r.len_prefix(0)?,
    })
}

pub(crate) fn encode_aggregation_stats(stats: &AggregationStats, w: &mut Writer) {
    w.len_prefix(stats.steps.len());
    for step in &stats.steps {
        w.str(&step.composed.0);
        w.str(&step.composed.1);
        encode_model_stats(step.before_aggregation, w);
        encode_model_stats(step.after_aggregation, w);
        w.len_prefix(step.hidden);
    }
    encode_model_stats(stats.peak, w);
    encode_model_stats(stats.final_model, w);
}

pub(crate) fn decode_aggregation_stats(r: &mut Reader<'_>) -> DecodeResult<AggregationStats> {
    let num_steps = r.len_prefix(1)?;
    let mut steps = Vec::with_capacity(num_steps);
    for _ in 0..num_steps {
        let left = r.str()?;
        let right = r.str()?;
        let before_aggregation = decode_model_stats(r)?;
        let after_aggregation = decode_model_stats(r)?;
        let hidden = r.len_prefix(0)?;
        steps.push(StepStats {
            composed: (left, right),
            before_aggregation,
            after_aggregation,
            hidden,
        });
    }
    let peak = decode_model_stats(r)?;
    let final_model = decode_model_stats(r)?;
    Ok(AggregationStats {
        steps,
        peak,
        final_model,
    })
}

pub(crate) fn encode_bools(bools: &[bool], w: &mut Writer) {
    w.len_prefix(bools.len());
    for &b in bools {
        w.bool(b);
    }
}

pub(crate) fn decode_bools(r: &mut Reader<'_>) -> DecodeResult<Vec<bool>> {
    let n = r.len_prefix(1)?;
    (0..n).map(|_| r.bool()).collect()
}

/// Serializes a CTMDP: the state vector, the initial state and the goal
/// vector — exactly the triple [`Ctmdp::new`] consumes on the way back.
pub(crate) fn encode_ctmdp(ctmdp: &Ctmdp, w: &mut Writer) {
    w.len_prefix(ctmdp.num_states());
    for state in ctmdp.states() {
        match state {
            CtmdpState::Markovian(rates) => {
                w.u8(0);
                w.len_prefix(rates.len());
                for &(target, rate) in rates {
                    w.u32(target);
                    w.f64(rate);
                }
            }
            CtmdpState::Immediate(successors) => {
                w.u8(1);
                w.len_prefix(successors.len());
                for &target in successors {
                    w.u32(target);
                }
            }
        }
    }
    w.len_prefix(ctmdp.initial());
    encode_bools(ctmdp.goal(), w);
}

/// Decodes a CTMDP through the validating [`Ctmdp::new`] constructor, so
/// out-of-range targets and invalid rates in a corrupted entry surface as a
/// clean [`DecodeError`].
pub(crate) fn decode_ctmdp(r: &mut Reader<'_>) -> DecodeResult<Ctmdp> {
    let num_states = r.len_prefix(1)?;
    let mut states = Vec::with_capacity(num_states);
    for _ in 0..num_states {
        states.push(match r.u8()? {
            0 => {
                let n = r.len_prefix(12)?;
                let mut rates = Vec::with_capacity(n);
                for _ in 0..n {
                    rates.push((r.u32()?, r.f64()?));
                }
                CtmdpState::Markovian(rates)
            }
            1 => {
                let n = r.len_prefix(4)?;
                let mut successors = Vec::with_capacity(n);
                for _ in 0..n {
                    successors.push(r.u32()?);
                }
                CtmdpState::Immediate(successors)
            }
            other => return Err(DecodeError::new(format!("invalid CTMDP state tag {other}"))),
        });
    }
    let initial = r.len_prefix(0)?;
    let goal = decode_bools(r)?;
    Ctmdp::new(states, initial, goal)
        .map_err(|e| DecodeError::new(format!("decoded CTMDP is invalid: {e}")))
}

// ---------------------------------------------------------------------------
// The store itself.
// ---------------------------------------------------------------------------

/// Cumulative counters of one [`ModelStore`] handle.
///
/// `hits + misses` is the number of load attempts; `rejected` is the subset
/// of misses where an entry *existed* but was refused (truncated, corrupted,
/// wrong version, foreign fingerprint, failed validation) — the
/// distinguishing signal between "cold store" and "store with a problem".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads that produced a usable model.
    pub hits: u64,
    /// Loads that found nothing usable (absent entries and rejections).
    pub misses: u64,
    /// Entries that existed but were refused and will be rebuilt.
    pub rejected: u64,
    /// Entries successfully written (atomically published).
    pub writes: u64,
    /// Write-backs that failed; on the service path these degrade to an
    /// in-memory-only cache entry, never to an error.
    pub write_errors: u64,
    /// Bytes read from disk across all load attempts.
    pub read_bytes: u64,
    /// Bytes written to disk across all successful writes.
    pub write_bytes: u64,
}

/// A directory-backed, cross-process cache of closed models.
///
/// One handle is cheap and thread-safe (`&self` everywhere, atomic counters);
/// any number of handles — in this process, in other processes, on other
/// machines sharing the directory — may read and write concurrently, see the
/// [module documentation](self) for the format and concurrency story.
///
/// # Example
///
/// ```no_run
/// use dft_core::store::ModelStore;
/// use dft_core::{AnalysisOptions, Analyzer};
/// # fn main() -> Result<(), dft_core::Error> {
/// # let dft = dft_core::casestudies::cas();
/// let store = ModelStore::open("/var/cache/dftmc")?;
/// let options = AnalysisOptions::default();
/// let analyzer = match store.load_analyzer(dft.fingerprint(), &options) {
///     Some(warm) => warm, // no aggregation ran
///     None => {
///         let built = Analyzer::new(&dft, options.clone())?;
///         store.save_analyzer(dft.fingerprint(), &built)?;
///         built
///     }
/// };
/// # let _ = analyzer;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelStore {
    dir: PathBuf,
    /// Distinguishes concurrent temporary files of one handle; combined with
    /// the process id to distinguish handles.
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
}

impl ModelStore {
    /// Opens (creating if necessary) the store directory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ModelStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| Error::Store {
            message: format!("cannot create store directory {}: {e}", dir.display()),
        })?;
        Ok(ModelStore {
            dir,
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            write_bytes: AtomicU64::new(0),
        })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the cumulative counters of this handle.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
        }
    }

    /// The entry path for a (kind, method, fingerprint, ε) quadruple.  All
    /// four are part of the name, so distinct configurations never collide.
    fn entry_path(&self, kind: Kind, method: Method, fingerprint: u64, eps_bits: u64) -> PathBuf {
        let method = match method {
            Method::Compositional => 'c',
            Method::Monolithic => 'm',
            Method::Hybrid => 'h',
        };
        self.dir.join(format!(
            "{}{method}-{fingerprint:016x}-{eps_bits:016x}.dftm",
            kind.prefix()
        ))
    }

    /// Loads the numeric closed model cached for `fingerprint`
    /// ([`Dft::fingerprint`](dft::Dft::fingerprint)) under `options`, or
    /// `None` when no usable entry exists.  Corrupt, truncated, stale and
    /// foreign entries are rejected (counted in [`StoreStats::rejected`]) and
    /// reported as a miss — the caller rebuilds and overwrites.
    pub fn load_analyzer(&self, fingerprint: u64, options: &AnalysisOptions) -> Option<Analyzer> {
        let eps_bits = options.epsilon.to_bits();
        let path = self.entry_path(Kind::Session, options.method, fingerprint, eps_bits);
        // The frame carries fingerprint and ε; the method is encoded in the
        // payload (and the file name), so verify it survived the round trip.
        // The check lives inside the decode step so a mismatch counts as one
        // rejection, like every other refusal — never as a hit.
        self.load_entry(&path, Kind::Session, fingerprint, eps_bits, |payload| {
            let decoded = Analyzer::decode_payload(payload)?;
            if decoded.method() != options.method {
                return Err(DecodeError::new("entry method disagrees with the request"));
            }
            Ok(decoded)
        })
    }

    /// Writes the entry for `fingerprint` ([`Dft::fingerprint`](dft::Dft::fingerprint)),
    /// atomically replacing any previous one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] when serialization cannot be persisted (I/O
    /// failure); the failure is also counted in [`StoreStats::write_errors`].
    pub fn save_analyzer(&self, fingerprint: u64, analyzer: &Analyzer) -> Result<()> {
        let eps_bits = analyzer.options().epsilon.to_bits();
        let path = self.entry_path(Kind::Session, analyzer.method(), fingerprint, eps_bits);
        let framed = seal(
            Kind::Session,
            fingerprint,
            eps_bits,
            &analyzer.encode_payload(),
        );
        self.write_atomic(&path, &framed)
    }

    /// Loads the parametric closed model cached for `structural_fingerprint`
    /// ([`Dft::structural_fingerprint`](dft::Dft::structural_fingerprint))
    /// under `options`; same rejection semantics as
    /// [`load_analyzer`](Self::load_analyzer).
    pub fn load_parametric(
        &self,
        structural_fingerprint: u64,
        options: &AnalysisOptions,
    ) -> Option<ParametricAnalyzer> {
        let eps_bits = options.epsilon.to_bits();
        let path = self.entry_path(
            Kind::Parametric,
            options.method,
            structural_fingerprint,
            eps_bits,
        );
        self.load_entry(
            &path,
            Kind::Parametric,
            structural_fingerprint,
            eps_bits,
            |payload| {
                let decoded = ParametricAnalyzer::decode_payload(payload)?;
                if decoded.options().method != options.method {
                    return Err(DecodeError::new("entry method disagrees with the request"));
                }
                Ok(decoded)
            },
        )
    }

    /// Writes the parametric entry for `structural_fingerprint`, atomically
    /// replacing any previous one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] when the entry cannot be persisted.
    pub fn save_parametric(
        &self,
        structural_fingerprint: u64,
        parametric: &ParametricAnalyzer,
    ) -> Result<()> {
        let eps_bits = parametric.options().epsilon.to_bits();
        let path = self.entry_path(
            Kind::Parametric,
            parametric.options().method,
            structural_fingerprint,
            eps_bits,
        );
        let framed = seal(
            Kind::Parametric,
            structural_fingerprint,
            eps_bits,
            &parametric.encode_payload(),
        );
        self.write_atomic(&path, &framed)
    }

    /// Shared load path: read, unseal, decode; count the outcome.
    fn load_entry<T>(
        &self,
        path: &Path,
        kind: Kind,
        fingerprint: u64,
        eps_bits: u64,
        decode: impl FnOnce(&[u8]) -> DecodeResult<T>,
    ) -> Option<T> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(_) => {
                // Absent entry: an ordinary cold miss, not a rejection.
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // xlint: allow(cast) -- usize to u64 widening is lossless on every supported target
        let read = bytes.len() as u64;
        self.read_bytes.fetch_add(read, Ordering::Relaxed);
        match unseal(&bytes, kind, Some((fingerprint, eps_bits))).and_then(decode) {
            Ok(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Err(_) => {
                self.reject_one();
                None
            }
        }
    }

    /// Counts one rejection (an entry that existed but was refused).
    fn reject_one(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Writes `bytes` to `path` via a unique temporary file in the same
    /// directory and an atomic rename, so concurrent readers never observe a
    /// partial entry.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        // Entry paths are built from hex fingerprints, so the file name is
        // always UTF-8; the fallback merely keeps this path panic-free.
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = self.dir.join(format!(
            ".{file_name}.tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let publish = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
        match publish {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                // xlint: allow(cast) -- usize to u64 widening is lossless on every supported target
                let written = bytes.len() as u64;
                self.write_bytes.fetch_add(written, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&tmp);
                Err(Error::Store {
                    message: format!("cannot write store entry {}: {e}", path.display()),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_mismatches() {
        let payload = b"model bytes".to_vec();
        let framed = seal(Kind::Session, 0xfeed, 0x1234, &payload);
        assert_eq!(
            unseal(&framed, Kind::Session, Some((0xfeed, 0x1234))).unwrap(),
            payload.as_slice()
        );
        // Identity-agnostic open (the from_bytes path).
        assert_eq!(
            unseal(&framed, Kind::Session, None).unwrap(),
            payload.as_slice()
        );
        // Foreign fingerprint, foreign epsilon, wrong kind.
        assert!(unseal(&framed, Kind::Session, Some((0xbeef, 0x1234))).is_err());
        assert!(unseal(&framed, Kind::Session, Some((0xfeed, 0x9999))).is_err());
        assert!(unseal(&framed, Kind::Parametric, Some((0xfeed, 0x1234))).is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let framed = seal(Kind::Parametric, 1, 2, b"payload!");
        // Any strict prefix is truncated.
        for cut in 0..framed.len() {
            assert!(unseal(&framed[..cut], Kind::Parametric, None).is_err());
        }
        // Any single flipped payload byte breaks the checksum.
        let payload_start = framed.len() - b"payload!".len();
        for i in payload_start..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(unseal(&bad, Kind::Parametric, None).is_err());
        }
        // A bumped format version is stale.
        let mut stale = framed.clone();
        stale[4] = stale[4].wrapping_add(1);
        assert!(unseal(&stale, Kind::Parametric, None).is_err());
        // Bad magic.
        let mut foreign = framed;
        foreign[0] = b'X';
        assert!(unseal(&foreign, Kind::Parametric, None).is_err());
    }
}
