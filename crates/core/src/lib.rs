//! # dft-core — compositional DFT analysis via I/O-IMCs
//!
//! This crate implements the central contribution of Boudali, Crouzen & Stoelinga,
//! *"Dynamic Fault Tree analysis using Input/Output Interactive Markov Chains"*
//! (DSN 2007):
//!
//! 1. a **compositional semantics** mapping every DFT element (basic events, static
//!    gates, PAND, spare and FDEP gates, plus the auxiliaries for activation,
//!    functional dependence and inhibition) to a small elementary I/O-IMC
//!    ([`semantics`], [`convert`]);
//! 2. the **compositional aggregation** algorithm of Section 5: repeatedly compose
//!    two members of the I/O-IMC community, hide the signals nobody listens to any
//!    more, and minimise modulo weak bisimulation ([`aggregate`]);
//! 3. the **analysis** of the resulting CTMC/CTMDP: unreliability (time-bounded
//!    reachability of the top-level failure), CTMDP bounds when non-determinism
//!    remains, and unavailability for repairable models ([`analysis`]);
//! 4. the **DIFTree-style monolithic baseline** the paper compares against: one
//!    CTMC generated over the whole tree at once ([`baseline`]);
//! 5. the paper's two case studies, ready to analyse ([`casestudies`]).
//!
//! # Quick start
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::{AnalysisOptions, Analyzer};
//!
//! # fn main() -> Result<(), dft_core::Error> {
//! // A primary with a cold spare, sharing nothing.
//! let mut b = DftBuilder::new();
//! let p = b.basic_event("P", 1.0, Dormancy::Hot)?;
//! let s = b.basic_event("S", 1.0, Dormancy::Cold)?;
//! let top = b.spare_gate("Top", &[p, s])?;
//! let dft = b.build(top)?;
//!
//! let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
//! let result = analyzer.unreliability(1.0)?;
//! // Time to failure is Erlang(2, 1): P(T <= 1) = 1 - 2·exp(-1).
//! let exact = 1.0 - 2.0 * (-1.0f64).exp();
//! assert!((result.value() - exact).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod aggregate;
pub mod analysis;
pub mod baseline;
pub mod casestudies;
pub mod convert;
pub mod engine;
pub mod parametric;
pub mod query;
pub mod request;
pub mod rng;
pub mod semantics;
pub mod service;
pub mod signals;
pub mod simulate;
pub mod store;

pub use analysis::{AnalysisOptions, Method};
// The one-shot wrappers stay re-exported for path compatibility; they are
// deprecated in favour of `Analyzer` sessions and `AnalysisService::run_request`.
#[allow(deprecated)]
pub use analysis::{mean_time_to_failure, unavailability, unreliability};
pub use convert::{convert_parametric, Community};
pub use engine::{Analyzer, ParametricAnalyzer, RateSweep};
pub use parametric::{ParamKind, ParamSlot, ParamTable, Valuation};
pub use query::{Measure, MeasurePoint, MeasureResult};
pub use request::{AnalysisRequest, MethodSpec, QuerySpec, RequestError, SweepSpec};
pub use service::{
    AnalysisJob, AnalysisService, BatchStats, CacheStats, HybridStats, JobHandle, JobReport,
    QueueStats, RequestHandle, RequestOutcome, ServiceOptions, ServiceReport, SweepHandle,
    SweepJob, SweepPointReport, SweepReport, SweepStats,
};
pub use store::{ModelStore, StoreStats};

use std::fmt;

/// Errors produced by the semantic translation and the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An error reported by the `dft` crate (syntax/wellformedness).
    Dft(dft::Error),
    /// An error reported by the `ioimc` crate (composition, hiding, …).
    Ioimc(ioimc::Error),
    /// An error reported by the `markov` crate (numerical analysis).
    Markov(markov::Error),
    /// The DFT uses a feature combination the translation does not support.
    Unsupported {
        /// Description of the unsupported combination.
        message: String,
    },
    /// The final model is non-deterministic, but a point result was requested.
    Nondeterministic {
        /// Lower bound of the measure.
        min: f64,
        /// Upper bound of the measure.
        max: f64,
    },
    /// A curve query carried no mission times, so there is nothing to evaluate.
    ///
    /// Rejected at [`Analyzer::query`](engine::Analyzer::query) time so the
    /// accessors of [`MeasureResult`] never see an empty
    /// result (they used to panic on one).
    EmptyCurve,
    /// A [`parametric::Valuation`] does not fit the parametric model
    /// it was applied to: wrong slot count, or a non-finite/non-positive rate
    /// value.
    InvalidValuation {
        /// Description of the violation.
        message: String,
    },
    /// A time-bounded measure carried a mission time that is NaN, infinite or
    /// negative.
    ///
    /// Rejected at the [`Analyzer::query`](engine::Analyzer::query) /
    /// [`query_all`](engine::Analyzer::query_all) boundary, before any
    /// numerical work starts — such times used to surface only deep inside the
    /// uniformisation routines as an untyped numerical error.
    InvalidMissionTime {
        /// The offending mission time.
        value: f64,
    },
    /// A persistent model-store operation failed: the store directory cannot
    /// be created, an entry cannot be written, or bytes handed to
    /// [`Analyzer::from_bytes`](engine::Analyzer::from_bytes) /
    /// [`ParametricAnalyzer::from_bytes`](engine::ParametricAnalyzer::from_bytes)
    /// do not decode.
    ///
    /// Raised only by the explicit [`store::ModelStore`] and `from_bytes`
    /// APIs.  The [`service::AnalysisService`] cache path never surfaces it:
    /// a load problem is a cache miss (the model is rebuilt) and a write-back
    /// problem degrades to an in-memory-only entry.
    Store {
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dft(e) => write!(f, "DFT error: {e}"),
            Error::Ioimc(e) => write!(f, "I/O-IMC error: {e}"),
            Error::Markov(e) => write!(f, "numerical error: {e}"),
            Error::Unsupported { message } => write!(f, "unsupported model: {message}"),
            Error::Nondeterministic { min, max } => {
                write!(f, "non-deterministic model: measure lies in [{min}, {max}]")
            }
            Error::EmptyCurve => {
                write!(f, "an unreliability curve needs at least one mission time")
            }
            Error::InvalidValuation { message } => {
                write!(f, "invalid valuation: {message}")
            }
            Error::InvalidMissionTime { value } => {
                write!(
                    f,
                    "invalid mission time {value}: mission times must be finite and non-negative"
                )
            }
            Error::Store { message } => write!(f, "model store error: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dft(e) => Some(e),
            Error::Ioimc(e) => Some(e),
            Error::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dft::Error> for Error {
    fn from(e: dft::Error) -> Error {
        Error::Dft(e)
    }
}

impl From<ioimc::Error> for Error {
    fn from(e: ioimc::Error) -> Error {
        Error::Ioimc(e)
    }
}

impl From<markov::Error> for Error {
    fn from(e: markov::Error) -> Error {
        Error::Markov(e)
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
