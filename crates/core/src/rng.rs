//! A minimal, dependency-free pseudo-random number generator.
//!
//! The Monte-Carlo estimator ([`crate::simulate`]) only needs a reproducible
//! stream of uniform variates to drive inverse-transform sampling of exponential
//! delays.  Instead of pulling in an external crate, this module implements
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state advanced by a
//! Weyl sequence and scrambled by a variance-of-MurmurHash3 finaliser.  It passes
//! BigCrush when used as a stream, is trivially seedable, and every seed yields a
//! full-period sequence — more than adequate for statistical estimation.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform variate in the half-open interval `[0, 1)`, using the top 53 bits
    /// (the full precision of an `f64` mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform variate in the open interval `(0, 1)`: the midpoint of the
    /// 53-bit lattice cell, so neither endpoint can occur and `ln(u)` is finite.
    pub fn open01(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_variates_stay_in_range() {
        let mut rng = SplitMix64::new(0xdead_beef);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let u = rng.open01();
            assert!(u > 0.0 && u < 1.0);
            sum += u;
        }
        // Mean of n uniforms concentrates around 1/2.
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
        let v = rng.next_f64();
        assert!((0.0..1.0).contains(&v));
    }
}
