//! Surface-agnostic analysis requests: one description of *tree + method/ε +
//! measures + optional sweep*, shared by every front end.
//!
//! Before this module each transport parsed its own job format: the HTTP
//! router grew ad-hoc per-endpoint JSON plumbing, the CLI would have grown a
//! second copy, and library callers assembled [`AnalysisJob`]/[`SweepJob`]
//! structs by hand.  An [`AnalysisRequest`] is the common denominator: any
//! surface — JSON body, command line, Rust code — produces one, and
//! [`AnalysisService::run_request`] /
//! [`submit_request`](crate::service::AnalysisService::submit_request) is the
//! single entry point that executes it (as a plain job, or as a sweep when a
//! [`SweepSpec`] is attached).
//!
//! [`AnalysisJob`]: crate::service::AnalysisJob
//! [`SweepJob`]: crate::service::SweepJob
//! [`AnalysisService::run_request`]: crate::service::AnalysisService::run_request
//!
//! Two textual grammars feed it:
//!
//! * **JSON request documents** ([`AnalysisRequest::from_json`]) — the HTTP
//!   body schema: `{"galileo": …}` or `{"tree": …}` (dftlib interchange, see
//!   [`dft::json_format`]), optional `"method"`/`"epsilon"`, a `"measures"`
//!   array (or a `"queries"` array of query lines), and an optional
//!   `"sweep"` object.
//! * **Query lines** ([`QuerySpec::parse`]) — the CLI grammar, one query per
//!   line:
//!
//!   ```text
//!   unreliability <time>
//!   curve <time> <time> ...
//!   unavailability
//!   mttf
//!   sweep lambda(<element>) in <start>..<end> step <step>
//!   sweep mu(<element>) in <start>..<end> step <step>
//!   sweep scale in <start>..<end> step <step>
//!   ```
//!
//!   `lambda(P)` sweeps the failure rate of basic event `P`, `mu(P)` its
//!   repair rate, and `scale` scales *every* failure rate by the running
//!   value.  Ranges are inclusive: `0.5..2.0 step 0.1` expands to 16 points
//!   `0.5, 0.6, …, 2.0` (each computed as `start + i·step`, so the expansion
//!   is deterministic and bit-stable).  At most one sweep per request.
//!
//! This module parses untrusted text and is held to the workspace decode bar
//! (xlint `panic`/`index`/`cast` rules): total, typed [`RequestError`]s, no
//! panics.  Every client-controlled dimension is capped ([`MAX_MEASURES`],
//! [`MAX_CURVE_POINTS`], [`MAX_SWEEP_VALUES`]) before any expensive work can
//! be enqueued.

use crate::analysis::{AnalysisOptions, Method};
use crate::parametric::{ParamKind, ParamTable, Valuation};
use crate::query::Measure;
use crate::{Error, Result};
use dft::json::Json;
use dft::Dft;
use std::fmt;

/// Most measures a single request may carry.
pub const MAX_MEASURES: usize = 64;
/// Most time points one curve measure may carry.
pub const MAX_CURVE_POINTS: usize = 4096;
/// Most values one sweep may expand to.
pub const MAX_SWEEP_VALUES: usize = 4096;

/// A typed request-construction failure.
///
/// Every variant is a *client* error: the request was malformed or too large.
/// Analysis failures (unsupported models, numerical errors) are reported per
/// job in the reports instead, they never surface here.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// A JSON request document is missing a field or carries the wrong type.
    Schema {
        /// Description of the violated schema rule.
        message: String,
    },
    /// The tree failed to parse or validate (Galileo or JSON interchange).
    Tree {
        /// The underlying parse/validation error, rendered.
        message: String,
    },
    /// A query line could not be parsed.
    Query {
        /// The offending line, verbatim.
        input: String,
        /// Description of the problem.
        message: String,
    },
    /// A client-controlled dimension exceeds its cap.
    TooLarge {
        /// What was oversized ("measures", "curve times", "sweep values").
        what: &'static str,
        /// The requested size.
        have: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Schema { message } => write!(f, "{message}"),
            RequestError::Tree { message } => write!(f, "{message}"),
            RequestError::Query { input, message } => {
                write!(f, "cannot parse query '{input}': {message}")
            }
            RequestError::TooLarge { what, have, cap } => {
                write!(f, "{have} {what} requested; the limit is {cap}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

fn schema(message: impl Into<String>) -> RequestError {
    RequestError::Schema {
        message: message.into(),
    }
}

/// A parseable analysis-method name: the textual face of [`Method`], shared
/// by the `method` JSON field and the CLI `--method` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSpec(pub Method);

impl MethodSpec {
    /// The canonical lower-case name ([`parse`](str::parse) accepts exactly
    /// these).
    pub fn name(self) -> &'static str {
        match self.0 {
            Method::Compositional => "compositional",
            Method::Monolithic => "monolithic",
            Method::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl std::str::FromStr for MethodSpec {
    type Err = RequestError;

    fn from_str(s: &str) -> std::result::Result<MethodSpec, RequestError> {
        match s {
            "compositional" => Ok(MethodSpec(Method::Compositional)),
            "monolithic" => Ok(MethodSpec(Method::Monolithic)),
            "hybrid" => Ok(MethodSpec(Method::Hybrid)),
            _ => Err(schema(
                "field 'method' must be \"compositional\", \"monolithic\" or \"hybrid\"",
            )),
        }
    }
}

/// A symbolic description of the valuations a sweep should evaluate.
///
/// [`SweepJob`](crate::service::SweepJob) carries concrete [`Valuation`]s,
/// which forces the *submitter* to know the parametric model's slot layout —
/// and the slot layout only exists once the model is built.  A `SweepSpec`
/// defers that: the symbolic forms are resolved against the shared model's
/// [`ParamTable`] by the sweep's head task, *after* the model is built (or
/// loaded from the store) on the worker pool.  A front end that receives
/// "sweep P's failure rate over these values" off the wire can thus enqueue
/// the sweep without ever touching the model on its own threads.
#[derive(Debug, Clone)]
pub enum SweepSpec {
    /// Explicit, pre-built valuations — the classic
    /// [`SweepJob`](crate::service::SweepJob) path;
    /// [`submit_sweep`](crate::service::AnalysisService::submit_sweep)
    /// delegates through this variant.
    Valuations(Vec<Valuation>),
    /// One point per factor: the base valuation with every *failure* rate
    /// scaled by the factor (repair rates keep their base value); see
    /// [`ParamTable::scaled_valuation`].
    FailureScales(Vec<f64>),
    /// One point per value: the base valuation with the named basic event's
    /// rate of the given kind replaced by the value.
    Element {
        /// Name of the basic event whose rate is swept.
        element: String,
        /// Which of the event's rates is swept.
        kind: ParamKind,
        /// The values the rate sweeps over.
        values: Vec<f64>,
    },
}

impl SweepSpec {
    /// Number of sweep points the spec expands to.  Known *without* the
    /// model: every form fixes its point count at submission time, which is
    /// what lets the service enqueue that many point tasks up front.
    pub fn len(&self) -> usize {
        match self {
            SweepSpec::Valuations(v) => v.len(),
            SweepSpec::FailureScales(scales) => scales.len(),
            SweepSpec::Element { values, .. } => values.len(),
        }
    }

    /// True when the spec expands to zero points (the sweep is a no-op).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the spec into concrete valuations against a parametric
    /// model's slot table.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidValuation`] when [`SweepSpec::Element`] names an
    /// element/kind pair the table has no slot for.
    pub fn resolve(&self, table: &ParamTable) -> Result<Vec<Valuation>> {
        match self {
            SweepSpec::Valuations(valuations) => Ok(valuations.clone()),
            SweepSpec::FailureScales(scales) => Ok(scales
                .iter()
                .map(|&scale| table.scaled_valuation(scale))
                .collect()),
            SweepSpec::Element {
                element,
                kind,
                values,
            } => {
                let slot =
                    table
                        .slot_of(element, *kind)
                        .ok_or_else(|| Error::InvalidValuation {
                            message: format!(
                                "the parametric model has no {kind} parameter \
                             for element '{element}'"
                            ),
                        })?;
                Ok(values
                    .iter()
                    .map(|&value| {
                        let mut valuation = table.base_valuation();
                        valuation.set(slot, value);
                        valuation
                    })
                    .collect())
            }
        }
    }
}

/// One parsed query line: either a measure or a sweep (see the
/// [module docs](self) for the grammar).
#[derive(Debug, Clone)]
pub enum QuerySpec {
    /// A measure to evaluate against the tree as given.
    Measure(Measure),
    /// A rate sweep; a request carries at most one.
    Sweep(SweepSpec),
}

impl QuerySpec {
    /// Parses one query line.
    ///
    /// # Errors
    ///
    /// [`RequestError::Query`] for grammar violations,
    /// [`RequestError::TooLarge`] when a curve or sweep exceeds its cap.
    pub fn parse(line: &str) -> std::result::Result<QuerySpec, RequestError> {
        let bad = |message: String| RequestError::Query {
            input: line.to_owned(),
            message,
        };
        let trimmed = line.trim();
        let mut tokens = trimmed.split_whitespace();
        let Some(keyword) = tokens.next() else {
            return Err(bad("empty query".to_owned()));
        };
        match keyword {
            "unreliability" => {
                let time = parse_number(tokens.next(), "mission time").map_err(&bad)?;
                if tokens.next().is_some() {
                    return Err(bad("expected: unreliability <time>".to_owned()));
                }
                Ok(QuerySpec::Measure(Measure::Unreliability(time)))
            }
            "curve" => {
                let mut times = Vec::new();
                for token in tokens {
                    times.push(parse_number(Some(token), "mission time").map_err(&bad)?);
                    if times.len() > MAX_CURVE_POINTS {
                        return Err(RequestError::TooLarge {
                            what: "curve times",
                            have: trimmed.split_whitespace().count().saturating_sub(1),
                            cap: MAX_CURVE_POINTS,
                        });
                    }
                }
                if times.is_empty() {
                    return Err(bad("expected: curve <time> <time> ...".to_owned()));
                }
                Ok(QuerySpec::Measure(Measure::UnreliabilityCurve(times)))
            }
            "unavailability" | "mttf" => {
                if tokens.next().is_some() {
                    return Err(bad(format!("'{keyword}' takes no arguments")));
                }
                Ok(QuerySpec::Measure(match keyword {
                    "unavailability" => Measure::Unavailability,
                    _ => Measure::Mttf,
                }))
            }
            "sweep" => {
                let rest = trimmed.strip_prefix("sweep").unwrap_or("").trim_start();
                Ok(QuerySpec::Sweep(parse_sweep(rest).map_err(&bad)?))
            }
            other => Err(bad(format!(
                "unknown query '{other}' (expected unreliability, curve, \
                 unavailability, mttf or sweep)"
            ))),
        }
    }
}

fn parse_number(token: Option<&str>, what: &str) -> std::result::Result<f64, String> {
    let token = token.ok_or_else(|| format!("missing {what}"))?;
    token
        .parse::<f64>()
        .map_err(|_| format!("cannot parse {what} '{token}'"))
}

/// Parses the part of a sweep query after the `sweep` keyword:
/// `lambda(<element>) | mu(<element>) | scale`, then
/// `in <start>..<end> step <step>`.
fn parse_sweep(rest: &str) -> std::result::Result<SweepSpec, String> {
    const USAGE: &str =
        "expected: sweep lambda(<element>)|mu(<element>)|scale in <start>..<end> step <step>";
    let (target, tail) = if let Some(tail) = rest.strip_prefix("scale") {
        (None, tail)
    } else {
        let (kind, after) = if let Some(after) = rest.strip_prefix("lambda(") {
            (ParamKind::Failure, after)
        } else if let Some(after) = rest.strip_prefix("mu(") {
            (ParamKind::Repair, after)
        } else {
            return Err(USAGE.to_owned());
        };
        // The element name is everything up to the *last* ')': names may
        // contain parentheses, while the range tail never does.
        let close = after
            .rfind(')')
            .ok_or_else(|| format!("missing ')' after the element name; {USAGE}"))?;
        let element = after.get(..close).unwrap_or("");
        let tail = after.get(close + 1..).unwrap_or("");
        if element.is_empty() {
            return Err(format!("empty element name; {USAGE}"));
        }
        (Some((element.to_owned(), kind)), tail)
    };

    let mut tokens = tail.split_whitespace();
    if tokens.next() != Some("in") {
        return Err(USAGE.to_owned());
    }
    let range = tokens.next().ok_or_else(|| USAGE.to_owned())?;
    let (start, end) = range
        .split_once("..")
        .ok_or_else(|| format!("range '{range}' must look like <start>..<end>"))?;
    let start: f64 = start
        .parse()
        .map_err(|_| format!("cannot parse range start '{start}'"))?;
    let end: f64 = end
        .parse()
        .map_err(|_| format!("cannot parse range end '{end}'"))?;
    if tokens.next() != Some("step") {
        return Err(USAGE.to_owned());
    }
    let step = parse_number(tokens.next(), "step")?;
    if tokens.next().is_some() {
        return Err(USAGE.to_owned());
    }
    if !start.is_finite() || !end.is_finite() || !step.is_finite() {
        return Err("range bounds and step must be finite".to_owned());
    }
    if step <= 0.0 {
        return Err(format!("step must be positive, got {step}"));
    }
    if end < start {
        return Err(format!("range end {end} lies before start {start}"));
    }

    // Inclusive expansion as `start + i·step`: deterministic, bit-stable,
    // and tolerant of the usual binary representation error at the end point
    // (one part in 10⁹ of a step).
    let mut values = Vec::new();
    let tolerance = step * 1e-9;
    let mut i: u32 = 0;
    loop {
        let value = f64::from(i).mul_add(step, start);
        if value > end + tolerance {
            break;
        }
        values.push(value);
        if values.len() > MAX_SWEEP_VALUES {
            return Err(format!(
                "the range expands to more than {MAX_SWEEP_VALUES} values"
            ));
        }
        i += 1;
    }
    Ok(match target {
        None => SweepSpec::FailureScales(values),
        Some((element, kind)) => SweepSpec::Element {
            element,
            kind,
            values,
        },
    })
}

/// A complete, surface-agnostic description of one analysis: the tree, the
/// method and precision, the measures, and an optional sweep.
///
/// Built from a JSON document ([`from_json`](Self::from_json)), from query
/// lines ([`add_query`](Self::add_query)), or assembled directly; executed by
/// [`AnalysisService::run_request`](crate::service::AnalysisService::run_request).
#[derive(Debug, Clone)]
pub struct AnalysisRequest {
    /// The tree to analyze.
    pub dft: Dft,
    /// Method and truncation error; part of the service's cache key.
    pub options: AnalysisOptions,
    /// The measures to evaluate (per valuation, when a sweep is attached).
    pub measures: Vec<Measure>,
    /// When present, the request is a rate sweep over these valuations.
    pub sweep: Option<SweepSpec>,
}

impl AnalysisRequest {
    /// A request over `dft` with default options and no measures yet.
    pub fn new(dft: Dft) -> AnalysisRequest {
        AnalysisRequest {
            dft,
            options: AnalysisOptions::default(),
            measures: Vec::new(),
            sweep: None,
        }
    }

    /// Adds one parsed query line (see the [module docs](self) for the
    /// grammar): measures accumulate, a sweep attaches to the request.
    ///
    /// # Errors
    ///
    /// [`RequestError::Query`] for grammar violations, and typed errors when
    /// the request grows beyond [`MAX_MEASURES`] or a second sweep arrives.
    pub fn add_query(&mut self, line: &str) -> std::result::Result<(), RequestError> {
        match QuerySpec::parse(line)? {
            QuerySpec::Measure(measure) => {
                self.measures.push(measure);
                if self.measures.len() > MAX_MEASURES {
                    return Err(RequestError::TooLarge {
                        what: "measures",
                        have: self.measures.len(),
                        cap: MAX_MEASURES,
                    });
                }
                Ok(())
            }
            QuerySpec::Sweep(spec) => {
                if self.sweep.is_some() {
                    return Err(RequestError::Query {
                        input: line.to_owned(),
                        message: "a request carries at most one sweep".to_owned(),
                    });
                }
                if spec.len() > MAX_SWEEP_VALUES {
                    return Err(RequestError::TooLarge {
                        what: "sweep values",
                        have: spec.len(),
                        cap: MAX_SWEEP_VALUES,
                    });
                }
                self.sweep = Some(spec);
                Ok(())
            }
        }
    }

    /// Parses a JSON request document (the HTTP body schema; see the
    /// [module docs](self)): a tree in `"galileo"` (Galileo text) or
    /// `"tree"` (dftlib interchange object), optional `"method"` and
    /// `"epsilon"`, measures in `"measures"` (objects) and/or `"queries"`
    /// (query lines), and an optional `"sweep"` object.
    ///
    /// # Errors
    ///
    /// A typed [`RequestError`] naming the first violated rule; caps are
    /// enforced before any expensive work.
    pub fn from_json(doc: &Json) -> std::result::Result<AnalysisRequest, RequestError> {
        let dft = match (field(doc, "galileo"), field(doc, "tree")) {
            (Some(Json::Str(text)), _) => {
                dft::galileo::parse(text).map_err(|e| RequestError::Tree {
                    message: format!("invalid Galileo tree: {e}"),
                })?
            }
            (Some(_), _) => {
                return Err(schema("field 'galileo' must be a string in Galileo syntax"))
            }
            (None, Some(tree)) => {
                dft::json_format::decode(tree).map_err(|e| RequestError::Tree {
                    message: format!("invalid JSON tree: {e}"),
                })?
            }
            (None, None) => {
                return Err(schema(
                    "missing string field 'galileo' (the tree in Galileo syntax) \
                     or object field 'tree' (dftlib JSON interchange)",
                ))
            }
        };

        let mut request = AnalysisRequest::new(dft);
        match field(doc, "method") {
            None => {}
            Some(Json::Str(s)) => request.options.method = s.parse::<MethodSpec>()?.0,
            Some(_) => {
                return Err(schema(
                    "field 'method' must be \"compositional\", \"monolithic\" or \"hybrid\"",
                ))
            }
        }
        match field(doc, "epsilon") {
            None => {}
            Some(Json::Num(e)) if e.is_finite() && *e > 0.0 => request.options.epsilon = *e,
            Some(_) => return Err(schema("field 'epsilon' must be a positive finite number")),
        }

        let measures = field(doc, "measures");
        let queries = field(doc, "queries");
        if measures.is_none() && queries.is_none() {
            return Err(schema("missing array field 'measures'"));
        }
        if let Some(value) = measures {
            let Json::Arr(items) = value else {
                return Err(schema("field 'measures' must be an array"));
            };
            if items.len() > MAX_MEASURES {
                return Err(RequestError::TooLarge {
                    what: "measures",
                    have: items.len(),
                    cap: MAX_MEASURES,
                });
            }
            for item in items {
                request.measures.push(parse_measure(item)?);
            }
            if request.measures.len() > MAX_MEASURES {
                return Err(RequestError::TooLarge {
                    what: "measures",
                    have: request.measures.len(),
                    cap: MAX_MEASURES,
                });
            }
        }
        if let Some(value) = queries {
            let Json::Arr(items) = value else {
                return Err(schema("field 'queries' must be an array of query strings"));
            };
            for item in items {
                let Json::Str(line) = item else {
                    return Err(schema("field 'queries' must contain only strings"));
                };
                request.add_query(line)?;
            }
        }

        if let Some(spec) = field(doc, "sweep") {
            if request.sweep.is_some() {
                return Err(schema(
                    "the request carries both a 'sweep' object and a sweep query",
                ));
            }
            request.sweep = Some(parse_sweep_object(spec)?);
        }
        Ok(request)
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    match field(doc, key) {
        Some(Json::Str(s)) => Some(s),
        _ => None,
    }
}

fn num_field(doc: &Json, key: &str) -> Option<f64> {
    match field(doc, key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// A numeric array field, with a cap enforced before collection.
fn num_array(
    doc: &Json,
    key: &str,
    what: &'static str,
    cap: usize,
) -> std::result::Result<Option<Vec<f64>>, RequestError> {
    let Some(value) = field(doc, key) else {
        return Ok(None);
    };
    let Json::Arr(items) = value else {
        return Err(schema(format!("field '{key}' must be an array of numbers")));
    };
    if items.len() > cap {
        return Err(RequestError::TooLarge {
            what,
            have: items.len(),
            cap,
        });
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Json::Num(n) => out.push(*n),
            _ => return Err(schema(format!("field '{key}' must contain only numbers"))),
        }
    }
    Ok(Some(out))
}

/// One measure object: `{"type": "unreliability", "time": …}`,
/// `{"type": "curve", "times": […]}`, `{"type": "unavailability"}` or
/// `{"type": "mttf"}`.
fn parse_measure(doc: &Json) -> std::result::Result<Measure, RequestError> {
    let kind = str_field(doc, "type")
        .ok_or_else(|| schema("every measure needs a string field 'type'"))?;
    match kind {
        "unreliability" => {
            let time = num_field(doc, "time")
                .ok_or_else(|| schema("measure 'unreliability' needs a numeric 'time'"))?;
            Ok(Measure::Unreliability(time))
        }
        "curve" => {
            let times = num_array(doc, "times", "curve times", MAX_CURVE_POINTS)?
                .ok_or_else(|| schema("measure 'curve' needs a numeric array 'times'"))?;
            Ok(Measure::UnreliabilityCurve(times))
        }
        "unavailability" => Ok(Measure::Unavailability),
        "mttf" => Ok(Measure::Mttf),
        other => Err(schema(format!(
            "unknown measure type '{other}' (expected unreliability, curve, unavailability or mttf)"
        ))),
    }
}

/// The `"sweep"` object: `{"scales": […]}`, `{"element": …, "kind":
/// "failure"|"repair", "values": […]}`, or `{"query": "sweep …"}` (the CLI
/// grammar embedded in JSON).
fn parse_sweep_object(spec: &Json) -> std::result::Result<SweepSpec, RequestError> {
    if let Some(scales) = num_array(spec, "scales", "sweep values", MAX_SWEEP_VALUES)? {
        return Ok(SweepSpec::FailureScales(scales));
    }
    if let Some(element) = str_field(spec, "element") {
        let kind = match str_field(spec, "kind") {
            None | Some("failure") => ParamKind::Failure,
            Some("repair") => ParamKind::Repair,
            Some(other) => {
                return Err(schema(format!(
                    "unknown sweep kind '{other}' (expected \"failure\" or \"repair\")"
                )))
            }
        };
        let values = num_array(spec, "values", "sweep values", MAX_SWEEP_VALUES)?
            .ok_or_else(|| schema("an element sweep needs a numeric array 'values'"))?;
        return Ok(SweepSpec::Element {
            element: element.to_owned(),
            kind,
            values,
        });
    }
    if let Some(line) = str_field(spec, "query") {
        return match QuerySpec::parse(line)? {
            QuerySpec::Sweep(spec) => Ok(spec),
            QuerySpec::Measure(_) => Err(schema(
                "field 'sweep'.'query' must be a sweep query, not a measure",
            )),
        };
    }
    Err(schema(
        "field 'sweep' must carry either 'scales' or 'element' + 'values'",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TREE: &str = "toplevel \"Top\";\n\"Top\" and \"A\" \"B\";\n\"A\" lambda=1.0 dorm=0.0;\n\"B\" lambda=2.0 dorm=0.0;\n";

    #[test]
    fn query_lines_parse_into_measures() {
        match QuerySpec::parse("unreliability 1.5") {
            Ok(QuerySpec::Measure(Measure::Unreliability(t))) => assert_eq!(t, 1.5),
            other => panic!("{other:?}"),
        }
        match QuerySpec::parse("  curve 0.5 1.0 2.0 ") {
            Ok(QuerySpec::Measure(Measure::UnreliabilityCurve(times))) => {
                assert_eq!(times, vec![0.5, 1.0, 2.0]);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            QuerySpec::parse("unavailability"),
            Ok(QuerySpec::Measure(Measure::Unavailability))
        ));
        assert!(matches!(
            QuerySpec::parse("mttf"),
            Ok(QuerySpec::Measure(Measure::Mttf))
        ));
    }

    #[test]
    fn sweep_grammar_expands_inclusive_ranges() {
        let spec = match QuerySpec::parse("sweep lambda(P) in 0.5..2.0 step 0.1") {
            Ok(QuerySpec::Sweep(spec)) => spec,
            other => panic!("{other:?}"),
        };
        let SweepSpec::Element {
            element,
            kind,
            values,
        } = &spec
        else {
            panic!("{spec:?}");
        };
        assert_eq!(element, "P");
        assert_eq!(*kind, ParamKind::Failure);
        assert_eq!(values.len(), 16);
        assert_eq!(values.first().copied(), Some(0.5));
        // Bit-stable: every value is exactly start + i*step.
        for (i, &value) in values.iter().enumerate() {
            assert_eq!(value, (i as f64).mul_add(0.1, 0.5), "point {i}");
        }

        match QuerySpec::parse("sweep mu(Pump 2) in 1..3 step 1") {
            Ok(QuerySpec::Sweep(SweepSpec::Element {
                element,
                kind,
                values,
            })) => {
                assert_eq!(element, "Pump 2");
                assert_eq!(kind, ParamKind::Repair);
                assert_eq!(values, vec![1.0, 2.0, 3.0]);
            }
            other => panic!("{other:?}"),
        }

        match QuerySpec::parse("sweep scale in 0.5..1.5 step 0.5") {
            Ok(QuerySpec::Sweep(SweepSpec::FailureScales(scales))) => {
                assert_eq!(scales, vec![0.5, 1.0, 1.5]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_grammar_rejects_malformed_input() {
        for line in [
            "sweep",
            "sweep lambda(P)",
            "sweep lambda(P) in 1..2",
            "sweep lambda(P) in 1..2 step 0",
            "sweep lambda(P) in 2..1 step 0.5",
            "sweep lambda(P) in a..b step 1",
            "sweep lambda() in 1..2 step 1",
            "sweep lambda(P in 1..2 step 1",
            "sweep rho(P) in 1..2 step 1",
            "sweep lambda(P) in 1..2 step 1 extra",
            "sweep scale in 0..1e9 step 1e-3",
            "nonsense 1.0",
            "unreliability",
            "unreliability x",
            "curve",
            "mttf 3",
        ] {
            assert!(QuerySpec::parse(line).is_err(), "{line} should not parse");
        }
    }

    #[test]
    fn requests_accumulate_queries_and_cap_sweeps() {
        let dft = dft::galileo::parse(TREE).unwrap();
        let mut request = AnalysisRequest::new(dft);
        request.add_query("unreliability 1.0").unwrap();
        request.add_query("mttf").unwrap();
        request.add_query("sweep scale in 1..2 step 1").unwrap();
        assert_eq!(request.measures.len(), 2);
        assert!(request.sweep.is_some());
        // A second sweep is rejected.
        assert!(request.add_query("sweep scale in 1..2 step 1").is_err());
    }

    #[test]
    fn json_documents_parse_into_requests() {
        let doc = Json::obj([
            ("galileo", TREE.into()),
            ("method", "hybrid".into()),
            ("epsilon", 1e-6.into()),
            (
                "measures",
                Json::Arr(vec![Json::obj([
                    ("type", "unreliability".into()),
                    ("time", 1.0.into()),
                ])]),
            ),
            (
                "sweep",
                Json::obj([("scales", Json::Arr(vec![0.5.into(), 1.0.into()]))]),
            ),
        ]);
        let request = AnalysisRequest::from_json(&doc).unwrap();
        assert_eq!(request.options.method, Method::Hybrid);
        assert_eq!(request.options.epsilon, 1e-6);
        assert_eq!(request.measures.len(), 1);
        assert!(matches!(
            request.sweep,
            Some(SweepSpec::FailureScales(ref scales)) if scales.len() == 2
        ));
    }

    #[test]
    fn json_documents_accept_trees_and_query_lines() {
        let dft = dft::galileo::parse(TREE).unwrap();
        let doc = Json::Obj(vec![
            ("tree".to_owned(), dft::json_format::encode(&dft)),
            (
                "queries".to_owned(),
                Json::Arr(vec![
                    "unreliability 1.0".into(),
                    "sweep scale in 1..2 step 0.5".into(),
                ]),
            ),
        ]);
        let request = AnalysisRequest::from_json(&doc).unwrap();
        assert_eq!(request.dft.fingerprint(), dft.fingerprint());
        assert_eq!(request.measures.len(), 1);
        assert!(matches!(
            request.sweep,
            Some(SweepSpec::FailureScales(ref scales)) if scales.len() == 3
        ));
    }

    #[test]
    fn json_schema_violations_are_typed() {
        for (doc, needle) in [
            (Json::obj([]), "missing string field 'galileo'"),
            (Json::obj([("galileo", 3.0.into())]), "must be a string"),
            (
                Json::obj([("galileo", "nonsense".into())]),
                "invalid Galileo tree",
            ),
            (
                Json::obj([("galileo", TREE.into())]),
                "missing array field 'measures'",
            ),
            (
                Json::obj([
                    ("galileo", TREE.into()),
                    ("measures", Json::Arr(Vec::new())),
                    ("epsilon", (-1.0).into()),
                ]),
                "positive finite",
            ),
            (
                Json::obj([
                    ("galileo", TREE.into()),
                    ("measures", Json::Arr(Vec::new())),
                    ("method", "fancy".into()),
                ]),
                "compositional",
            ),
        ] {
            match AnalysisRequest::from_json(&doc) {
                Err(e) => assert!(e.to_string().contains(needle), "{e} !~ {needle}"),
                Ok(_) => panic!("{} should not parse", doc.render()),
            }
        }
    }
}
