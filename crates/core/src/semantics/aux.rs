//! Auxiliary I/O-IMCs: firing auxiliary, activation auxiliary, inhibition
//! auxiliary and the monitor used for unavailability analysis.
//!
//! The paper introduces small helper processes wherever one element's behaviour is
//! influenced by signals of elements that are not its inputs in the tree:
//!
//! * the **firing auxiliary (FA)** of an FDEP dependent event ORs the event's own
//!   failure with the failure of the trigger(s) (Figure 5);
//! * the **activation auxiliary (AA)** ORs the claim signals of all spare gates
//!   sharing a spare into the spare's single activation signal (Section 4);
//! * the **inhibition auxiliary (IA)** lets a failure be preempted by the prior
//!   failure of an inhibitor (Figure 12);
//! * the **monitor** is our small addition for the repairable extension: it tracks
//!   whether the top event is currently failed, labelling its "down" state with an
//!   atomic proposition so that steady-state analysis can measure unavailability.

use crate::{Error, Result};
use ioimc::{Action, IoImc, IoImcBuilder};

/// Builds an OR-shaped auxiliary: as soon as any of the `inputs` occurs, `output`
/// is emitted (once), after which the auxiliary rests in an absorbing state.
///
/// Used both for the FDEP firing auxiliary (inputs: the dependent's own failure and
/// the triggers' failures; output: the dependent's observable failure) and for the
/// activation auxiliary (inputs: the claim signals of the sharing spare gates;
/// output: the spare's activation signal).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if `inputs` is empty.
pub fn or_auxiliary(name: &str, inputs: &[Action], output: Action) -> Result<IoImc> {
    if inputs.is_empty() {
        return Err(Error::Unsupported {
            message: format!("auxiliary '{name}' needs at least one input"),
        });
    }
    let mut b = IoImcBuilder::new(name.to_owned());
    let waiting = b.add_state();
    let firing = b.add_state();
    let done = b.add_state();
    b.initial(waiting);
    for &input in inputs {
        b.input(waiting, input, firing);
    }
    b.output(firing, output, done);
    b.build().map_err(Error::from)
}

/// Builds the inhibition auxiliary of Figure 12: the failure `subject` is
/// propagated as `output` unless one of the `inhibitors` occurs first, in which
/// case the auxiliary moves to an absorbing operational state and `output` is never
/// emitted.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if `inhibitors` is empty.
pub fn inhibition_auxiliary(
    name: &str,
    subject: Action,
    inhibitors: &[Action],
    output: Action,
) -> Result<IoImc> {
    if inhibitors.is_empty() {
        return Err(Error::Unsupported {
            message: format!("inhibition auxiliary '{name}' needs at least one inhibitor"),
        });
    }
    let mut b = IoImcBuilder::new(name.to_owned());
    let waiting = b.add_state();
    let firing = b.add_state();
    let fired = b.add_state();
    let blocked = b.add_state();
    b.initial(waiting);
    b.input(waiting, subject, firing);
    for &inhibitor in inhibitors {
        b.input(waiting, inhibitor, blocked);
    }
    b.output(firing, output, fired);
    b.build().map_err(Error::from)
}

/// Builds the monitor process for (un)availability analysis: it follows the top
/// event's failure and (optionally) repair signals and labels its "down" state with
/// the atomic proposition `"down"`.
///
/// Without a repair signal the down state is absorbing, which makes the labelled
/// states usable for unreliability queries as well.
pub fn monitor(name: &str, failure: Action, repair: Option<Action>) -> Result<IoImc> {
    let mut b = IoImcBuilder::new(name.to_owned());
    let up = b.add_state();
    let down = b.add_state();
    b.initial(up);
    b.input(up, failure, down);
    if let Some(repair) = repair {
        b.input(down, repair, up);
    }
    let prop = b.prop("down");
    b.set_prop(down, prop);
    b.build().map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::Label;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    #[test]
    fn firing_auxiliary_ors_its_inputs() {
        let fa = or_auxiliary("FA A", &[act("aux_fs_A"), act("aux_f_T")], act("aux_f_A")).unwrap();
        assert_eq!(fa.num_states(), 3);
        assert!(fa.validate().is_ok());
        // Both inputs lead to the same firing state.
        let targets: Vec<_> = fa
            .interactive_from(fa.initial())
            .iter()
            .map(|t| t.to)
            .collect();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0], targets[1]);
        assert!(fa
            .interactive()
            .iter()
            .any(|t| t.label == Label::Output(act("aux_f_A"))));
    }

    #[test]
    fn activation_auxiliary_handles_many_sources() {
        let aa = or_auxiliary(
            "AA S",
            &[act("aux_a_S__G1"), act("aux_a_S__G2"), act("aux_a_S__G3")],
            act("aux_a_S"),
        )
        .unwrap();
        assert_eq!(aa.num_states(), 3);
        assert_eq!(aa.interactive_from(aa.initial()).len(), 3);
    }

    #[test]
    fn empty_auxiliary_is_rejected() {
        assert!(or_auxiliary("FA empty", &[], act("aux_out_empty")).is_err());
        assert!(inhibition_auxiliary("IA empty", act("aux_s_e"), &[], act("aux_o_e")).is_err());
    }

    #[test]
    fn inhibition_blocks_when_the_inhibitor_fires_first() {
        let ia = inhibition_auxiliary("IA B", act("aux_fs_B"), &[act("aux_f_A")], act("aux_f_B"))
            .unwrap();
        assert_eq!(ia.num_states(), 4);
        let blocked = ia
            .interactive_from(ia.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("aux_f_A")))
            .unwrap()
            .to;
        // The blocked state is absorbing and never emits the failure.
        assert!(ia.interactive_from(blocked).is_empty());
        // The normal path does emit it.
        let firing = ia
            .interactive_from(ia.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("aux_fs_B")))
            .unwrap()
            .to;
        assert!(ia
            .interactive_from(firing)
            .iter()
            .any(|t| t.label == Label::Output(act("aux_f_B"))));
    }

    #[test]
    fn monitor_without_repair_is_absorbing() {
        let m = monitor("monitor", act("aux_f_sys"), None).unwrap();
        assert_eq!(m.num_states(), 2);
        let down = m.prop("down").unwrap();
        assert_eq!(m.states_with_prop(down).len(), 1);
        let down_state = m.states_with_prop(down)[0];
        assert!(m.interactive_from(down_state).is_empty());
    }

    #[test]
    fn monitor_with_repair_toggles() {
        let m = monitor("monitor", act("aux_f_sys_r"), Some(act("aux_r_sys_r"))).unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_interactive(), 2);
        let down = m.prop("down").unwrap();
        let down_state = m.states_with_prop(down)[0];
        assert_eq!(m.interactive_from(down_state).len(), 1);
    }
}
