//! Elementary I/O-IMC models of the DFT elements.
//!
//! Each sub-module builds the I/O-IMC of one kind of element, generalised to any
//! number of inputs as in the technical report the paper refers to:
//!
//! * [`be`] — basic events (cold/warm/hot, optionally repairable; Figure 3 and 13),
//! * [`threshold`] — AND, OR and voting gates, optionally repairable (Figure 14),
//! * [`pand`] — the priority-AND gate (Figure 4),
//! * [`spare`] — the spare gate with sharing, contention and dormant/active
//!   behaviour (Figure 11),
//! * [`aux`] — the auxiliaries: firing auxiliary of the FDEP gate (Figure 5), the
//!   activation auxiliary, the inhibition auxiliary (Figure 12) and the monitor
//!   used for unavailability analysis.
//!
//! The generators are deliberately independent of the `dft` crate (they take plain
//! actions) so they can be unit-tested in isolation and reused to define new DFT
//! elements, as Section 7 of the paper advocates.

pub mod aux;
pub mod be;
pub mod pand;
pub mod spare;
pub mod threshold;

pub use aux::{inhibition_auxiliary, monitor, or_auxiliary};
pub use be::{basic_event, BasicEventSpec};
pub use pand::{pand_gate, PandSpec};
pub use spare::{spare_gate, SpareInput, SpareSpec};
pub use threshold::{threshold_gate, ThresholdRepair, ThresholdSpec};
