//! The priority-AND gate (Figure 4 of the paper).
//!
//! A PAND gate fires when all its inputs have failed *and* they failed in
//! left-to-right order.  As soon as some input fails out of order, the gate can
//! never fire any more and moves to an absorbing operational state (the state
//! marked with an X in the paper's figure).

use crate::{Error, Result};
use ioimc::{Action, IoImc, IoImcBuilder};

/// Parameters of a priority-AND gate model.
#[derive(Debug, Clone)]
pub struct PandSpec {
    /// Name used for the generated model (diagnostics only).
    pub name: String,
    /// Failure signals of the inputs, in priority (left-to-right) order.
    pub inputs: Vec<Action>,
    /// The failure signal the gate emits.
    pub firing: Action,
}

/// Builds the I/O-IMC of a PAND gate.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if the gate has fewer than two inputs or the same
/// failure signal appears twice (the failure order of a signal with respect to
/// itself is not meaningful).
pub fn pand_gate(spec: &PandSpec) -> Result<IoImc> {
    let n = spec.inputs.len();
    if n < 2 {
        return Err(Error::Unsupported {
            message: format!("PAND gate '{}' needs at least two inputs", spec.name),
        });
    }
    for (i, a) in spec.inputs.iter().enumerate() {
        if spec.inputs[..i].contains(a) {
            return Err(Error::Unsupported {
                message: format!(
                    "PAND gate '{}' has the same input signal {} twice",
                    spec.name,
                    a.name()
                ),
            });
        }
    }

    let mut b = IoImcBuilder::new(format!("PAND {}", spec.name));
    // progress[j] = "the first j inputs have failed, in order".
    let progress: Vec<_> = (0..n).map(|_| b.add_state()).collect();
    let firing = b.add_state();
    let fired = b.add_state();
    let dead = b.add_state(); // absorbing operational state (wrong order)
    b.initial(progress[0]);
    b.output(firing, spec.firing, fired);

    for j in 0..n {
        let from = progress[j];
        // The expected next input advances the progress counter.
        let advance_to = if j + 1 == n { firing } else { progress[j + 1] };
        b.input(from, spec.inputs[j], advance_to);
        // Any later input failing now violates the order.
        for &later in &spec.inputs[j + 1..] {
            b.input(from, later, dead);
        }
        // Earlier inputs have already failed; their signals are ignored
        // (input-enabledness gives the implicit self-loops).
    }

    b.build().map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::{Label, StateId};

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn spec(name: &str, inputs: &[&str]) -> PandSpec {
        PandSpec {
            name: name.to_owned(),
            inputs: inputs.iter().map(|n| act(n)).collect(),
            firing: act(&format!("f_{name}")),
        }
    }

    #[test]
    fn two_input_pand_matches_figure_4() {
        let m = pand_gate(&spec("pand2", &["pand2_a", "pand2_b"])).unwrap();
        // initial, after-A, firing, fired, dead.
        assert_eq!(m.num_states(), 5);
        assert!(m.validate().is_ok());
        // From the initial state: A advances, B kills.
        let from_initial = m.interactive_from(m.initial());
        assert_eq!(from_initial.len(), 2);
        let a_target = from_initial
            .iter()
            .find(|t| t.label == Label::Input(act("pand2_a")))
            .unwrap()
            .to;
        let b_target = from_initial
            .iter()
            .find(|t| t.label == Label::Input(act("pand2_b")))
            .unwrap()
            .to;
        assert_ne!(a_target, b_target);
        // The dead state is absorbing: no outgoing transitions.
        assert!(m.interactive_from(b_target).is_empty());
        assert!(m.markovian_from(b_target).is_empty());
        // The in-order path eventually emits the firing signal.
        let after_a = m.interactive_from(a_target);
        let firing_state = after_a
            .iter()
            .find(|t| t.label == Label::Input(act("pand2_b")))
            .unwrap()
            .to;
        assert!(m
            .interactive_from(firing_state)
            .iter()
            .any(|t| t.label == Label::Output(act("f_pand2"))));
    }

    #[test]
    fn three_input_pand_requires_strict_order() {
        let m = pand_gate(&spec("pand3", &["pand3_a", "pand3_b", "pand3_c"])).unwrap();
        // progress 0..2, firing, fired, dead.
        assert_eq!(m.num_states(), 6);
        // From progress 1 (A failed), C failing kills the gate.
        let after_a = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("pand3_a")))
            .unwrap()
            .to;
        let c_target = m
            .interactive_from(after_a)
            .iter()
            .find(|t| t.label == Label::Input(act("pand3_c")))
            .unwrap()
            .to;
        assert!(
            m.interactive_from(c_target).is_empty(),
            "wrong order must deadlock"
        );
    }

    #[test]
    fn out_of_order_first_failure_kills_immediately() {
        let m = pand_gate(&spec("pand_oo", &["pand_oo_a", "pand_oo_b", "pand_oo_c"])).unwrap();
        let from_initial = m.interactive_from(m.initial());
        let dead_targets: Vec<StateId> = from_initial
            .iter()
            .filter(|t| {
                t.label == Label::Input(act("pand_oo_b"))
                    || t.label == Label::Input(act("pand_oo_c"))
            })
            .map(|t| t.to)
            .collect();
        assert_eq!(dead_targets.len(), 2);
        assert_eq!(dead_targets[0], dead_targets[1]);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(pand_gate(&spec("pand_bad", &["only"])).is_err());
        assert!(pand_gate(&spec("pand_bad2", &["pand_dup", "pand_dup"])).is_err());
    }
}
