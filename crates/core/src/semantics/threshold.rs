//! Static (threshold) gates: AND, OR and K-out-of-M voting, optionally repairable.
//!
//! All three static gates are instances of one threshold construction: the gate
//! fires as soon as at least `k` of its `n` inputs have failed (`k = 1` is OR,
//! `k = n` is AND).  Because each input announces its failure with its own signal,
//! the gate has to remember *which* inputs have failed, so the operational part of
//! the state space is the set of failed-input subsets — exactly the generalisation
//! of the elementary models sketched in the paper.
//!
//! The repairable variant (Figure 14 for the AND gate) additionally reacts to the
//! repair signals of its inputs and emits its own repair signal when the number of
//! failed inputs drops below the threshold again.

use crate::{Error, Result};
use ioimc::{Action, IoImc, IoImcBuilder, StateId};
use std::collections::HashMap;

/// Repair-related parameters of a threshold gate.
#[derive(Debug, Clone)]
pub struct ThresholdRepair {
    /// Repair signal of each input (`None` for inputs that can never be repaired),
    /// aligned with [`ThresholdSpec::inputs`].
    pub input_repairs: Vec<Option<Action>>,
    /// The repair signal the gate itself emits when it becomes operational again.
    pub repair_output: Action,
}

/// Parameters of a threshold (AND/OR/voting) gate model.
#[derive(Debug, Clone)]
pub struct ThresholdSpec {
    /// Name used for the generated model (diagnostics only).
    pub name: String,
    /// Failure threshold `k` (1 = OR, number of inputs = AND).
    pub k: u32,
    /// Failure signals of the inputs.
    pub inputs: Vec<Action>,
    /// The failure signal the gate emits.
    pub firing: Action,
    /// Repair behaviour, if the gate participates in a repairable analysis.
    pub repair: Option<ThresholdRepair>,
}

/// Upper limit on the number of inputs: the operational state space is the set of
/// failed-input subsets, so it grows as `2^n`.
const MAX_INPUTS: usize = 20;

/// Builds the I/O-IMC of a threshold gate.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if the threshold is out of range, the gate has
/// more than 20 inputs, or the repair specification is inconsistent.
pub fn threshold_gate(spec: &ThresholdSpec) -> Result<IoImc> {
    let n = spec.inputs.len();
    if n == 0 || spec.k == 0 || spec.k as usize > n {
        return Err(Error::Unsupported {
            message: format!(
                "threshold gate '{}': threshold {} outside 1..={}",
                spec.name, spec.k, n
            ),
        });
    }
    if n > MAX_INPUTS {
        return Err(Error::Unsupported {
            message: format!(
                "threshold gate '{}' has {} inputs; at most {} are supported",
                spec.name, n, MAX_INPUTS
            ),
        });
    }
    if let Some(repair) = &spec.repair {
        if repair.input_repairs.len() != n {
            return Err(Error::Unsupported {
                message: format!(
                    "threshold gate '{}': repair vector length {} does not match {} inputs",
                    spec.name,
                    repair.input_repairs.len(),
                    n
                ),
            });
        }
        return repairable_threshold(spec, repair);
    }
    unrepairable_threshold(spec)
}

/// Indices of inputs that carry the given action (an element may feed the same
/// gate twice, in which case one failure signal flips several input slots).
fn slots_for(inputs: &[Action], action: Action) -> Vec<usize> {
    inputs
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a == action)
        .map(|(i, _)| i)
        .collect()
}

fn unrepairable_threshold(spec: &ThresholdSpec) -> Result<IoImc> {
    let n = spec.inputs.len();
    let k = spec.k as usize;
    let mut b = IoImcBuilder::new(format!("{} ({}/{})", spec.name, k, n));

    // Interned operational states keyed by failed-input bitmask (|mask| < k).
    let mut states: HashMap<u32, StateId> = HashMap::new();
    let mut worklist: Vec<u32> = Vec::new();
    let firing = b.add_state();
    let fired = b.add_state();
    b.output(firing, spec.firing, fired);

    let initial = b.add_state();
    states.insert(0, initial);
    worklist.push(0);
    b.initial(initial);

    while let Some(mask) = worklist.pop() {
        let from = states[&mask];
        // Distinct actions only: one action may cover several input slots.
        let mut seen_actions: Vec<Action> = Vec::new();
        for &action in &spec.inputs {
            if seen_actions.contains(&action) {
                continue;
            }
            seen_actions.push(action);
            let mut next = mask;
            for slot in slots_for(&spec.inputs, action) {
                next |= 1 << slot;
            }
            if next == mask {
                continue;
            }
            if (next.count_ones() as usize) >= k {
                b.input(from, action, firing);
            } else {
                let to = match states.get(&next) {
                    Some(&s) => s,
                    None => {
                        let s = b.add_state();
                        states.insert(next, s);
                        worklist.push(next);
                        s
                    }
                };
                b.input(from, action, to);
            }
        }
    }

    b.build().map_err(Error::from)
}

fn repairable_threshold(spec: &ThresholdSpec, repair: &ThresholdRepair) -> Result<IoImc> {
    let n = spec.inputs.len();
    let k = spec.k as usize;
    let mut b = IoImcBuilder::new(format!("{} repairable ({}/{})", spec.name, k, n));

    // Phases of the gate's life cycle.
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Phase {
        Operational,
        Firing,
        Fired,
        RepairFiring,
    }
    type Key = (u32, Phase);

    let mut states: HashMap<Key, StateId> = HashMap::new();
    let mut worklist: Vec<Key> = Vec::new();

    let initial_key = (0u32, Phase::Operational);
    let initial = b.add_state();
    states.insert(initial_key, initial);
    worklist.push(initial_key);
    b.initial(initial);

    // Intern helper.
    fn intern(
        b: &mut IoImcBuilder,
        states: &mut HashMap<(u32, Phase), StateId>,
        worklist: &mut Vec<(u32, Phase)>,
        key: (u32, Phase),
    ) -> StateId {
        if let Some(&s) = states.get(&key) {
            return s;
        }
        let s = b.add_state();
        states.insert(key, s);
        worklist.push(key);
        s
    }

    while let Some((mask, phase)) = worklist.pop() {
        let from = states[&(mask, phase)];
        let failed = mask.count_ones() as usize;

        // Phase-changing immediate outputs.
        match phase {
            Phase::Firing => {
                let to = intern(&mut b, &mut states, &mut worklist, (mask, Phase::Fired));
                b.output(from, spec.firing, to);
            }
            Phase::RepairFiring => {
                let next_phase = if failed >= k {
                    Phase::Firing
                } else {
                    Phase::Operational
                };
                let to = intern(&mut b, &mut states, &mut worklist, (mask, next_phase));
                b.output(from, repair.repair_output, to);
            }
            Phase::Operational | Phase::Fired => {}
        }

        // Failure inputs.
        let mut seen_actions: Vec<Action> = Vec::new();
        for &action in &spec.inputs {
            if seen_actions.contains(&action) {
                continue;
            }
            seen_actions.push(action);
            let mut next_mask = mask;
            for slot in slots_for(&spec.inputs, action) {
                next_mask |= 1 << slot;
            }
            if next_mask == mask {
                continue;
            }
            let next_failed = next_mask.count_ones() as usize;
            let next_phase = match phase {
                Phase::Operational if next_failed >= k => Phase::Firing,
                other => other,
            };
            let to = intern(&mut b, &mut states, &mut worklist, (next_mask, next_phase));
            b.input(from, action, to);
        }

        // Repair inputs.
        let mut seen_repairs: Vec<Action> = Vec::new();
        for (slot, maybe_repair) in repair.input_repairs.iter().enumerate() {
            let Some(action) = maybe_repair else { continue };
            if seen_repairs.contains(action) {
                continue;
            }
            seen_repairs.push(*action);
            let action = *action;
            let mut next_mask = mask;
            // A repair signal repairs every slot fed by the same element.
            for s in repair
                .input_repairs
                .iter()
                .enumerate()
                .filter(|&(_, r)| *r == Some(action))
                .map(|(i, _)| i)
            {
                next_mask &= !(1 << s);
            }
            let _ = slot;
            if next_mask == mask {
                continue;
            }
            let next_failed = next_mask.count_ones() as usize;
            let next_phase = match phase {
                Phase::Fired if next_failed < k => Phase::RepairFiring,
                other => other,
            };
            let to = intern(&mut b, &mut states, &mut worklist, (next_mask, next_phase));
            b.input(from, action, to);
        }
    }

    b.build().map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::Label;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn spec(name: &str, k: u32, inputs: &[&str]) -> ThresholdSpec {
        ThresholdSpec {
            name: name.to_owned(),
            k,
            inputs: inputs.iter().map(|n| act(n)).collect(),
            firing: act(&format!("f_{name}")),
            repair: None,
        }
    }

    #[test]
    fn or_gate_is_small() {
        let m = threshold_gate(&spec("th_or", 1, &["th_or_a", "th_or_b", "th_or_c"])).unwrap();
        // initial, firing, fired.
        assert_eq!(m.num_states(), 3);
        // Three inputs all lead to the firing state.
        assert_eq!(m.interactive_from(m.initial()).len(), 3);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn and_gate_tracks_subsets() {
        let m = threshold_gate(&spec("th_and", 2, &["th_and_a", "th_and_b"])).unwrap();
        // {}, {a}, {b}, firing, fired.
        assert_eq!(m.num_states(), 5);
        assert!(m
            .interactive()
            .iter()
            .any(|t| t.label == Label::Output(act("f_th_and"))));
    }

    #[test]
    fn voting_two_of_three() {
        let m = threshold_gate(&spec("th_vote", 2, &["th_v_a", "th_v_b", "th_v_c"])).unwrap();
        // {}, three singletons, firing, fired.
        assert_eq!(m.num_states(), 6);
    }

    #[test]
    fn and_gate_with_four_inputs() {
        let m = threshold_gate(&spec("th_and4", 4, &["th4_a", "th4_b", "th4_c", "th4_d"])).unwrap();
        // All proper subsets (15) + firing + fired.
        assert_eq!(m.num_states(), 17);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn duplicate_inputs_fail_together() {
        // AND over the same signal twice fires on the first (and only) failure.
        let m = threshold_gate(&spec("th_dup", 2, &["th_dup_a", "th_dup_a"])).unwrap();
        assert_eq!(m.num_states(), 3);
    }

    #[test]
    fn invalid_thresholds_are_rejected() {
        assert!(threshold_gate(&spec("th_bad", 0, &["x1"])).is_err());
        assert!(threshold_gate(&spec("th_bad2", 3, &["x1", "x2"])).is_err());
        assert!(threshold_gate(&spec("th_bad3", 1, &[])).is_err());
        let many: Vec<String> = (0..25).map(|i| format!("th_many_{i}")).collect();
        let many_refs: Vec<&str> = many.iter().map(|s| s.as_str()).collect();
        assert!(threshold_gate(&spec("th_bad4", 1, &many_refs)).is_err());
    }

    #[test]
    fn repairable_and_gate_has_repair_output() {
        let mut s = spec("th_rep", 2, &["th_rep_a", "th_rep_b"]);
        s.repair = Some(ThresholdRepair {
            input_repairs: vec![Some(act("r_th_rep_a")), Some(act("r_th_rep_b"))],
            repair_output: act("r_th_rep"),
        });
        let m = threshold_gate(&s).unwrap();
        assert!(m.validate().is_ok());
        assert!(m.signature().is_output(act("r_th_rep")));
        assert!(m.signature().is_input(act("r_th_rep_a")));
        // The repairable AND gate of the paper (Figure 14) has more states than the
        // unrepairable one (5): failures can now be undone.
        assert!(m.num_states() > 5, "got {} states", m.num_states());
        // The gate must be able to fire, repair, and fire again: check that a
        // repair output transition exists and does not lead to a deadlock.
        let repair_transition = m
            .interactive()
            .iter()
            .find(|t| t.label == Label::Output(act("r_th_rep")))
            .expect("repair output present");
        assert!(!m.interactive_from(repair_transition.to).is_empty());
    }

    #[test]
    fn repairable_spec_length_is_checked() {
        let mut s = spec("th_rep_bad", 1, &["th_rb_a", "th_rb_b"]);
        s.repair = Some(ThresholdRepair {
            input_repairs: vec![Some(act("r_th_rb_a"))],
            repair_output: act("r_th_rb"),
        });
        assert!(threshold_gate(&s).is_err());
    }

    #[test]
    fn partially_repairable_inputs_are_supported() {
        let mut s = spec("th_partial", 2, &["th_p_a", "th_p_b"]);
        s.repair = Some(ThresholdRepair {
            input_repairs: vec![Some(act("r_th_p_a")), None],
            repair_output: act("r_th_partial"),
        });
        let m = threshold_gate(&s).unwrap();
        assert!(m.validate().is_ok());
        assert!(m.signature().is_input(act("r_th_p_a")));
    }
}
