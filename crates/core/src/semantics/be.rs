//! The basic-event I/O-IMC (Figure 3 of the paper; Figure 13 for the repairable
//! variant).
//!
//! A basic event waits (dormant) until it is activated, racing a possible dormant
//! failure; once active it fails with its nominal rate; failing means moving to a
//! *firing* state from which the failure signal is emitted immediately, after
//! which the event rests in the absorbing *fired* state.  A repairable basic event
//! leaves the fired state with its repair rate and announces the repair.

use crate::{Error, Result};
use ioimc::{Action, IoImcBuilderOf, IoImcOf, Rate};

/// Parameters of a basic-event model, generic over the rate type.
///
/// `R = f64` is the classical numeric basic event; `R = `[`ioimc::RateForm`]
/// produces the parametric variant whose failure and
/// repair rates are symbolic linear forms over parameter slots.
#[derive(Debug, Clone)]
pub struct BasicEventSpec<R = f64> {
    /// Name used for the generated model (diagnostics only).
    pub name: String,
    /// Failure rate λ while active.
    pub active_rate: R,
    /// Failure rate α·λ while dormant ([`Rate::zero`] for a cold event, λ for a
    /// hot one).
    pub dormant_rate: R,
    /// Activation signal to listen to; `None` for an always-active event.
    pub activation: Option<Action>,
    /// The failure signal to emit.
    pub firing: Action,
    /// Repair rate µ and repair signal, for the repairable extension.
    pub repair: Option<(R, Action)>,
}

/// Builds the I/O-IMC of a basic event.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for invalid active, dormant or repair rates
/// (the `dft` crate validates these earlier; the check here keeps the generator
/// safe to use stand-alone).
pub fn basic_event<R: Rate>(spec: &BasicEventSpec<R>) -> Result<IoImcOf<R>> {
    if !spec.active_rate.is_valid() {
        return Err(Error::Unsupported {
            message: format!("basic event '{}' has invalid active rate", spec.name),
        });
    }
    if !(spec.dormant_rate.is_zero() || spec.dormant_rate.is_valid()) {
        return Err(Error::Unsupported {
            message: format!("basic event '{}' has invalid dormant rate", spec.name),
        });
    }

    let mut b = IoImcBuilderOf::new(format!("BE {}", spec.name));

    // A basic event is effectively always-active if it has no activation signal or
    // if dormancy does not change its rate (hot event).
    let effectively_active = spec.activation.is_none() || spec.dormant_rate == spec.active_rate;

    let active = b.add_state();
    let firing = b.add_state();
    let fired = b.add_state();
    b.markovian(active, spec.active_rate.clone(), firing);
    b.output(firing, spec.firing, fired);

    if effectively_active {
        b.initial(active);
        // Still declare the activation input so composition with an activation
        // auxiliary stays possible (the signal is simply ignored).
        if let Some(a) = spec.activation {
            b.declare_input(a);
        }
    } else {
        let activation = spec.activation.expect("checked by effectively_active");
        let dormant = b.add_state();
        b.initial(dormant);
        b.input(dormant, activation, active);
        if !spec.dormant_rate.is_zero() {
            b.markovian(dormant, spec.dormant_rate.clone(), firing);
        }
    }

    if let Some((mu, repair_signal)) = &spec.repair {
        if !mu.is_valid() {
            return Err(Error::Unsupported {
                message: format!("basic event '{}' has invalid repair rate", spec.name),
            });
        }
        // After repair the component returns to its active mode: repair implies the
        // component is (re)installed and running.
        let repairing = b.add_state();
        b.markovian(fired, mu.clone(), repairing);
        b.output(repairing, *repair_signal, active);
    }

    b.build().map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::Label;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn spec(name: &str) -> BasicEventSpec {
        BasicEventSpec {
            name: name.to_owned(),
            active_rate: 2.0,
            dormant_rate: 0.0,
            activation: None,
            firing: act(&format!("f_{name}")),
            repair: None,
        }
    }

    #[test]
    fn always_active_event_is_a_three_state_chain() {
        let m = basic_event(&spec("be_active")).unwrap();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.num_markovian(), 1);
        assert_eq!(m.num_interactive(), 1);
        assert!(m.interactive()[0].label.is_output());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn cold_event_waits_for_activation() {
        let mut s = spec("be_cold");
        s.activation = Some(act("a_be_cold"));
        let m = basic_event(&s).unwrap();
        assert_eq!(m.num_states(), 4);
        // Initially no Markovian transition is enabled (cold: dormant rate 0).
        assert!(m.markovian_from(m.initial()).is_empty());
        assert!(m
            .interactive_from(m.initial())
            .iter()
            .any(|t| t.label == Label::Input(act("a_be_cold"))));
    }

    #[test]
    fn warm_event_races_dormant_failure_and_activation() {
        let mut s = spec("be_warm");
        s.activation = Some(act("a_be_warm"));
        s.dormant_rate = 0.5;
        let m = basic_event(&s).unwrap();
        assert_eq!(m.num_states(), 4);
        let initial_rates: Vec<f64> = m
            .markovian_from(m.initial())
            .iter()
            .map(|t| t.rate)
            .collect();
        assert_eq!(initial_rates, vec![0.5]);
        // After activation the full rate applies.
        let active = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label.is_input())
            .map(|t| t.to)
            .unwrap();
        let active_rates: Vec<f64> = m.markovian_from(active).iter().map(|t| t.rate).collect();
        assert_eq!(active_rates, vec![2.0]);
    }

    #[test]
    fn hot_event_ignores_activation() {
        let mut s = spec("be_hot");
        s.activation = Some(act("a_be_hot"));
        s.dormant_rate = 2.0;
        let m = basic_event(&s).unwrap();
        // Behaves like an always-active event, but still declares the input.
        assert_eq!(m.num_states(), 3);
        assert!(m.signature().is_input(act("a_be_hot")));
    }

    #[test]
    fn repairable_event_returns_to_active() {
        let mut s = spec("be_repair");
        s.repair = Some((5.0, act("r_be_repair")));
        let m = basic_event(&s).unwrap();
        assert_eq!(m.num_states(), 4);
        // fired --mu--> repairing --r!--> active
        let repair_out = m
            .interactive()
            .iter()
            .find(|t| t.label == Label::Output(act("r_be_repair")))
            .unwrap();
        assert_eq!(repair_out.to, m.initial());
        assert_eq!(m.num_markovian(), 2);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let mut s = spec("be_bad");
        s.active_rate = 0.0;
        assert!(basic_event(&s).is_err());
        let mut s2 = spec("be_bad2");
        s2.dormant_rate = -1.0;
        assert!(basic_event(&s2).is_err());
        let mut s3 = spec("be_bad3");
        s3.repair = Some((f64::NAN, act("r_be_bad3")));
        assert!(basic_event(&s3).is_err());
    }
}
