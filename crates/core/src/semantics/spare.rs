//! The spare gate (Figure 11 of the paper, generalised).
//!
//! The spare gate is the most intricate DFT element.  It manages an ordered list of
//! inputs — a primary and one or more spares — and relies on the lowest-indexed
//! input that is still *usable* (neither failed nor taken by a contending spare
//! gate).  When the gate is itself active it *claims* the input it relies on by
//! emitting an activation/claim signal `a_{X,G}`; contending gates hear the claim
//! and mark the spare unusable.  When every input is failed or unusable the gate
//! fires.  A spare gate that is itself used inside a spare module stays dormant
//! until its own activation signal arrives; while dormant it tracks failures and
//! contending claims but does not claim or activate anything — exactly the
//! behaviour Section 6.1 of the paper describes for complex spares.

use crate::{Error, Result};
use ioimc::{Action, IoImc, IoImcBuilder, StateId};
use std::collections::HashMap;

/// One input of a spare gate.
#[derive(Debug, Clone)]
pub struct SpareInput {
    /// The input's failure signal.
    pub failure: Action,
    /// The claim signal this gate emits when it starts relying on the input
    /// (`None` if no claim is needed, e.g. the primary of an always-active gate).
    pub claim: Option<Action>,
    /// Claim signals of *other* spare gates sharing this input; hearing one makes
    /// the input unusable.
    pub contenders: Vec<Action>,
}

/// Parameters of a spare-gate model.
#[derive(Debug, Clone)]
pub struct SpareSpec {
    /// Name used for the generated model (diagnostics only).
    pub name: String,
    /// The inputs in priority order; index 0 is the primary.
    pub inputs: Vec<SpareInput>,
    /// The failure signal the gate emits.
    pub firing: Action,
    /// The gate's own activation signal (`None` for an always-active gate).
    pub activation: Option<Action>,
}

/// Upper limit on the number of inputs (the state space tracks the usable subset).
const MAX_INPUTS: usize = 16;

/// Builds the I/O-IMC of a spare gate.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if the gate has fewer than two or more than 16
/// inputs.
pub fn spare_gate(spec: &SpareSpec) -> Result<IoImc> {
    let n = spec.inputs.len();
    if n < 2 {
        return Err(Error::Unsupported {
            message: format!(
                "spare gate '{}' needs a primary and at least one spare",
                spec.name
            ),
        });
    }
    if n > MAX_INPUTS {
        return Err(Error::Unsupported {
            message: format!(
                "spare gate '{}' has {} inputs; at most {} are supported",
                spec.name, n, MAX_INPUTS
            ),
        });
    }

    let mut b = IoImcBuilder::new(format!("SPARE {}", spec.name));

    /// Operational state of the gate.
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    struct Key {
        active: bool,
        usable: u32,
        /// Whether the input the gate currently relies on has been claimed (always
        /// `true` when no claim is required or the gate is dormant).
        claimed: bool,
    }

    let current = |usable: u32| -> Option<usize> {
        if usable == 0 {
            None
        } else {
            Some(usable.trailing_zeros() as usize)
        }
    };

    // Normalise the `claimed` flag so equivalent situations share a state.
    let normalise = |mut key: Key| -> Key {
        match current(key.usable) {
            None => {
                key.claimed = true;
            }
            Some(cur) => {
                if !key.active || spec.inputs[cur].claim.is_none() {
                    key.claimed = true;
                }
            }
        }
        key
    };

    let firing = b.add_state();
    let fired = b.add_state();
    b.output(firing, spec.firing, fired);

    let mut states: HashMap<Key, StateId> = HashMap::new();
    let mut worklist: Vec<Key> = Vec::new();

    let all_usable = (1u32 << n) - 1;
    let initial_key = normalise(Key {
        active: spec.activation.is_none(),
        usable: all_usable,
        claimed: false,
    });
    let initial = b.add_state();
    states.insert(initial_key, initial);
    worklist.push(initial_key);
    b.initial(initial);

    // Interning helper: all-failed states collapse onto the firing state.
    fn intern(
        b: &mut IoImcBuilder,
        states: &mut HashMap<Key, StateId>,
        worklist: &mut Vec<Key>,
        firing: StateId,
        key: Key,
    ) -> StateId {
        if key.usable == 0 {
            return firing;
        }
        if let Some(&s) = states.get(&key) {
            return s;
        }
        let s = b.add_state();
        states.insert(key, s);
        worklist.push(key);
        s
    }

    while let Some(key) = worklist.pop() {
        let from = states[&key];
        let cur = current(key.usable).expect("usable states have a current input");

        // Claim the current input if the gate is active and has not done so yet.
        if key.active && !key.claimed {
            let claim = spec.inputs[cur]
                .claim
                .expect("normalisation keeps claim=false only when a claim exists");
            let to_key = normalise(Key {
                claimed: true,
                ..key
            });
            let to = intern(&mut b, &mut states, &mut worklist, firing, to_key);
            b.output(from, claim, to);
        }

        // Activation of the gate itself.
        if !key.active {
            if let Some(activation) = spec.activation {
                let to_key = normalise(Key {
                    active: true,
                    claimed: false,
                    ..key
                });
                let to = intern(&mut b, &mut states, &mut worklist, firing, to_key);
                b.input(from, activation, to);
            }
        }

        // Failures and contending claims make inputs unusable.
        for j in 0..n {
            if key.usable & (1 << j) == 0 {
                continue;
            }
            let after_loss = |key: Key| -> Key {
                let mut next = key;
                next.usable &= !(1 << j);
                if j == cur {
                    next.claimed = false;
                }
                normalise(next)
            };

            let to_key = after_loss(key);
            let to = intern(&mut b, &mut states, &mut worklist, firing, to_key);
            b.input(from, spec.inputs[j].failure, to);

            for &contender in &spec.inputs[j].contenders {
                // If we already claimed the input a contender cannot take it away
                // (the contender heard our claim first); otherwise we lose it.
                if j == cur && key.claimed && key.active && spec.inputs[j].claim.is_some() {
                    continue;
                }
                let to = intern(&mut b, &mut states, &mut worklist, firing, to_key);
                b.input(from, contender, to);
            }
        }
    }

    b.build().map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioimc::Label;

    fn act(n: &str) -> Action {
        Action::new(n)
    }

    fn simple_input(prefix: &str, name: &str) -> SpareInput {
        SpareInput {
            failure: act(&format!("f_{prefix}_{name}")),
            claim: None,
            contenders: Vec::new(),
        }
    }

    #[test]
    fn unshared_always_active_gate_fires_after_all_inputs() {
        let spec = SpareSpec {
            name: "sp_basic".to_owned(),
            inputs: vec![simple_input("sp_basic", "p"), simple_input("sp_basic", "s")],
            firing: act("f_sp_basic"),
            activation: None,
        };
        let m = spare_gate(&spec).unwrap();
        assert!(m.validate().is_ok());
        // usable {p,s}, {s}, {p}, firing, fired.
        assert_eq!(m.num_states(), 5);
        // Primary fails, spare fails -> firing.
        let after_p = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_basic_p")))
            .unwrap()
            .to;
        let firing_state = m
            .interactive_from(after_p)
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_basic_s")))
            .unwrap()
            .to;
        assert!(m
            .interactive_from(firing_state)
            .iter()
            .any(|t| t.label == Label::Output(act("f_sp_basic"))));
    }

    #[test]
    fn claims_are_emitted_when_switching_to_a_spare() {
        let spec = SpareSpec {
            name: "sp_claim".to_owned(),
            inputs: vec![
                simple_input("sp_claim", "p"),
                SpareInput {
                    failure: act("f_sp_claim_s"),
                    claim: Some(act("a_sp_claim_s__g")),
                    contenders: Vec::new(),
                },
            ],
            firing: act("f_sp_claim"),
            activation: None,
        };
        let m = spare_gate(&spec).unwrap();
        // After the primary fails the gate must claim the spare.
        let after_p = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_claim_p")))
            .unwrap()
            .to;
        assert!(m
            .interactive_from(after_p)
            .iter()
            .any(|t| t.label == Label::Output(act("a_sp_claim_s__g"))));
        // But not before.
        assert!(!m
            .interactive_from(m.initial())
            .iter()
            .any(|t| t.label.is_output() && t.label.action() == act("a_sp_claim_s__g")));
    }

    #[test]
    fn contender_claims_make_the_spare_unusable() {
        let spec = SpareSpec {
            name: "sp_shared".to_owned(),
            inputs: vec![
                simple_input("sp_shared", "p"),
                SpareInput {
                    failure: act("f_sp_shared_s"),
                    claim: Some(act("a_sp_shared_s__g1")),
                    contenders: vec![act("a_sp_shared_s__g2")],
                },
            ],
            firing: act("f_sp_shared"),
            activation: None,
        };
        let m = spare_gate(&spec).unwrap();
        assert!(m.signature().is_input(act("a_sp_shared_s__g2")));
        // If the contender claims the spare and then the primary fails, the gate
        // fires (no usable inputs left).
        let after_contender = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("a_sp_shared_s__g2")))
            .unwrap()
            .to;
        let after_primary = m
            .interactive_from(after_contender)
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_shared_p")))
            .unwrap()
            .to;
        assert!(m
            .interactive_from(after_primary)
            .iter()
            .any(|t| t.label == Label::Output(act("f_sp_shared"))));
    }

    #[test]
    fn dormant_gate_claims_only_after_activation() {
        let spec = SpareSpec {
            name: "sp_dormant".to_owned(),
            inputs: vec![
                SpareInput {
                    failure: act("f_sp_dormant_p"),
                    claim: Some(act("a_sp_dormant_p__g")),
                    contenders: Vec::new(),
                },
                SpareInput {
                    failure: act("f_sp_dormant_s"),
                    claim: Some(act("a_sp_dormant_s__g")),
                    contenders: Vec::new(),
                },
            ],
            firing: act("f_sp_dormant"),
            activation: Some(act("a_sp_dormant")),
        };
        let m = spare_gate(&spec).unwrap();
        // Initially dormant: no claim output enabled.
        assert!(!m
            .interactive_from(m.initial())
            .iter()
            .any(|t| t.label.is_output()));
        // After activation the primary is claimed.
        let after_activation = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("a_sp_dormant")))
            .unwrap()
            .to;
        assert!(m
            .interactive_from(after_activation)
            .iter()
            .any(|t| t.label == Label::Output(act("a_sp_dormant_p__g"))));
    }

    #[test]
    fn dormant_gate_with_all_inputs_failed_still_fires() {
        let spec = SpareSpec {
            name: "sp_dormant_fail".to_owned(),
            inputs: vec![
                simple_input("sp_dormant_fail", "p"),
                simple_input("sp_dormant_fail", "s"),
            ],
            firing: act("f_sp_dormant_fail"),
            activation: Some(act("a_sp_dormant_fail")),
        };
        let m = spare_gate(&spec).unwrap();
        // Fail both inputs while dormant; the gate must reach its firing state.
        let after_p = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_dormant_fail_p")))
            .unwrap()
            .to;
        let after_both = m
            .interactive_from(after_p)
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_dormant_fail_s")))
            .unwrap()
            .to;
        assert!(m
            .interactive_from(after_both)
            .iter()
            .any(|t| t.label == Label::Output(act("f_sp_dormant_fail"))));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let spec = SpareSpec {
            name: "sp_bad".to_owned(),
            inputs: vec![simple_input("sp_bad", "p")],
            firing: act("f_sp_bad"),
            activation: None,
        };
        assert!(spare_gate(&spec).is_err());
    }

    #[test]
    fn three_inputs_are_claimed_in_priority_order() {
        let spec = SpareSpec {
            name: "sp_three".to_owned(),
            inputs: vec![
                simple_input("sp_three", "p"),
                SpareInput {
                    failure: act("f_sp_three_s1"),
                    claim: Some(act("a_sp_three_s1__g")),
                    contenders: Vec::new(),
                },
                SpareInput {
                    failure: act("f_sp_three_s2"),
                    claim: Some(act("a_sp_three_s2__g")),
                    contenders: Vec::new(),
                },
            ],
            firing: act("f_sp_three"),
            activation: None,
        };
        let m = spare_gate(&spec).unwrap();
        // After the primary fails, spare 1 (not spare 2) is claimed.
        let after_p = m
            .interactive_from(m.initial())
            .iter()
            .find(|t| t.label == Label::Input(act("f_sp_three_p")))
            .unwrap()
            .to;
        let outputs: Vec<Action> = m
            .interactive_from(after_p)
            .iter()
            .filter(|t| t.label.is_output())
            .map(|t| t.label.action())
            .collect();
        assert_eq!(outputs, vec![act("a_sp_three_s1__g")]);
    }
}
