//! Conversion of a DFT into a community of I/O-IMCs (Section 4.5 of the paper).
//!
//! Every element of the tree is mapped to its elementary I/O-IMC; auxiliaries are
//! added where needed (a firing auxiliary per FDEP-dependent element, an activation
//! auxiliary per dynamically activated spare-module root), and all inputs and
//! outputs are matched up through the naming scheme of [`signals`].

use crate::activation::ActivationAnalysis;
use crate::parametric::{ParamKind, ParamTable};
use crate::semantics::{
    basic_event, inhibition_auxiliary, or_auxiliary, pand_gate, spare_gate, threshold_gate,
    BasicEventSpec, PandSpec, SpareInput, SpareSpec, ThresholdRepair, ThresholdSpec,
};
use crate::{signals, Error, Result};
use dft::{Dft, Element, ElementId, GateKind};
use ioimc::{Action, IoImc, IoImcOf, Rate, RateForm};
use std::collections::BTreeMap;

/// The I/O-IMC community obtained from a DFT, together with the signals the
/// analysis needs to observe.  Generic over the rate type: [`convert`] produces
/// the numeric `Community`, [`convert_parametric`] the symbolic
/// `CommunityOf<RateForm>`.
#[derive(Debug, Clone)]
pub struct CommunityOf<R = f64> {
    /// One I/O-IMC per DFT element (except FDEP gates) plus auxiliaries.
    pub models: Vec<IoImcOf<R>>,
    /// The failure signal of the top event.
    pub top_failure: Action,
    /// The repair signal of the top event, when the DFT is repairable.
    pub top_repair: Option<Action>,
}

/// The numeric-rate community (the classical instantiation).
pub type Community = CommunityOf<f64>;

impl<R: Rate> CommunityOf<R> {
    /// Total number of states over all community members.
    pub fn total_states(&self) -> usize {
        self.models.iter().map(|m| m.num_states()).sum()
    }

    /// Number of community members.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if the community has no members (never the case for a valid
    /// DFT; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// The three rates of one basic event, in the model's rate type.
type BeRates<R> = (R, R, Option<R>);

/// Lifts a rate-free model (gates and auxiliaries never carry Markovian
/// transitions) into any rate type.
fn lift<R: Rate>(model: IoImc) -> IoImcOf<R> {
    model.map_rates(|_| unreachable!("gate and auxiliary models carry no Markovian transitions"))
}

/// Additional wellformedness conditions the translation imposes on top of the
/// `dft` crate's validation.
fn check_translatable(dft: &Dft) -> Result<()> {
    for fdep in dft.fdep_gates() {
        if !dft.parents(fdep).is_empty() {
            return Err(Error::Unsupported {
                message: format!(
                    "FDEP gate '{}' is used as an input of another gate; its output is a dummy \
                     and carries no failure information",
                    dft.name(fdep)
                ),
            });
        }
        if fdep == dft.top() {
            return Err(Error::Unsupported {
                message: format!(
                    "FDEP gate '{}' cannot be the top event (its output is a dummy)",
                    dft.name(fdep)
                ),
            });
        }
    }
    if dft.is_repairable() {
        for id in dft.elements() {
            if let Some(gate) = dft.element(id).as_gate() {
                if gate.kind.is_dynamic() {
                    return Err(Error::Unsupported {
                        message: format!(
                            "repairable analysis currently supports static gates only; \
                             '{}' is a {} gate",
                            dft.name(id),
                            gate.kind
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Elements that emit a repair signal in a repairable model: repairable basic
/// events and (in a repairable DFT) every static gate.
fn emits_repair(dft: &Dft, element: ElementId) -> bool {
    match dft.element(element) {
        Element::BasicEvent(be) => be.repair_rate.is_some(),
        Element::Gate(_) => dft.is_repairable(),
    }
}

/// Converts a DFT into its I/O-IMC community.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for feature combinations the translation does not
/// cover (see [`crate`] documentation) and propagates activation-analysis errors.
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::convert::convert;
/// # fn main() -> Result<(), dft_core::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let y = b.basic_event("Y", 1.0, Dormancy::Hot)?;
/// let top = b.and_gate("Top", &[x, y])?;
/// let dft = b.build(top)?;
/// let community = convert(&dft)?;
/// // One model per element: X, Y and the AND gate.
/// assert_eq!(community.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn convert(dft: &Dft) -> Result<Community> {
    convert_impl(dft, &mut |id| {
        let be = dft
            .element(id)
            .as_basic_event()
            .expect("rates are only requested for basic events");
        (be.rate, be.dormant_rate(), be.repair_rate)
    })
}

/// Converts a DFT into a *parametric* I/O-IMC community: every basic event's
/// failure rate becomes a fresh parameter slot (its dormant rate the structural
/// multiple α·λ of the same slot), every repair rate another slot, and all
/// Markovian transitions carry [`RateForm`]s over those slots.  The returned
/// [`ParamTable`] records the slot meanings and base values.
///
/// Aggregating this community (see
/// [`ParametricAnalyzer`](crate::engine::ParametricAnalyzer)) is sound for
/// **every** positive valuation of the slots at once, so one aggregation can
/// serve a whole rate sweep.
///
/// # Errors
///
/// Same conditions as [`convert`].
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::convert::convert_parametric;
/// # fn main() -> Result<(), dft_core::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let y = b.basic_event("Y", 2.0, Dormancy::Hot)?;
/// let top = b.and_gate("Top", &[x, y])?;
/// let dft = b.build(top)?;
/// let (community, params) = convert_parametric(&dft)?;
/// assert_eq!(community.len(), 3);
/// assert_eq!(params.len(), 2); // one failure slot per basic event
/// assert_eq!(params.base_valuation().values(), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn convert_parametric(dft: &Dft) -> Result<(CommunityOf<RateForm>, ParamTable)> {
    let mut table = ParamTable::default();
    let community = convert_impl(dft, &mut |id| {
        let be = dft
            .element(id)
            .as_basic_event()
            .expect("rates are only requested for basic events");
        let name = dft.name(id);
        let failure = table.push(name, ParamKind::Failure, be.rate);
        let active = RateForm::var(failure);
        let dormant = RateForm::scaled_var(failure, be.dormancy.factor());
        let repair = be
            .repair_rate
            .map(|mu| RateForm::var(table.push(name, ParamKind::Repair, mu)));
        (active, dormant, repair)
    })?;
    Ok((community, table))
}

/// The shared conversion core: `be_rates` supplies the three rates of each
/// basic event in the target rate type; everything else is rate-free.
fn convert_impl<R: Rate>(
    dft: &Dft,
    be_rates: &mut dyn FnMut(ElementId) -> BeRates<R>,
) -> Result<CommunityOf<R>> {
    check_translatable(dft)?;
    let activation = ActivationAnalysis::analyze(dft)?;

    // Which elements are FDEP-dependent, and on which triggers.
    let mut fdep_triggers: BTreeMap<ElementId, Vec<Action>> = BTreeMap::new();
    for fdep in dft.fdep_gates() {
        let inputs = dft.element(fdep).inputs();
        let trigger = signals::firing(dft, inputs[0]);
        for &dependent in &inputs[1..] {
            fdep_triggers.entry(dependent).or_default().push(trigger);
        }
    }

    // The signal an element emits itself: its observable failure signal, unless a
    // firing auxiliary sits between the element and its observers.
    let own_output = |element: ElementId| -> Action {
        if fdep_triggers.contains_key(&element) {
            signals::isolated_firing(dft, element)
        } else {
            signals::firing(dft, element)
        }
    };
    // The signal observers of an element listen to (always the post-FA signal).
    let observable = |element: ElementId| -> Action { signals::firing(dft, element) };

    let mut models: Vec<IoImcOf<R>> = Vec::new();

    for id in dft.elements() {
        let name = dft.name(id);
        match dft.element(id) {
            Element::BasicEvent(_) => {
                let (active_rate, dormant_rate, repair_rate) = be_rates(id);
                let spec = BasicEventSpec {
                    name: name.to_owned(),
                    active_rate,
                    dormant_rate,
                    activation: activation
                        .activation_root(id)
                        .map(|root| signals::activation(dft, root)),
                    firing: own_output(id),
                    repair: repair_rate.map(|mu| (mu, signals::repair(dft, id))),
                };
                models.push(basic_event(&spec)?);
            }
            Element::Gate(gate) => match gate.kind {
                GateKind::Fdep => {
                    // The FDEP gate itself has no behaviour; its firing auxiliaries
                    // are generated below.
                }
                GateKind::And | GateKind::Or | GateKind::Voting { .. } => {
                    let k = match gate.kind {
                        GateKind::And => gate.inputs.len() as u32,
                        GateKind::Or => 1,
                        GateKind::Voting { k } => k,
                        _ => unreachable!(),
                    };
                    let repair = if dft.is_repairable() {
                        Some(ThresholdRepair {
                            input_repairs: gate
                                .inputs
                                .iter()
                                .map(|&c| emits_repair(dft, c).then(|| signals::repair(dft, c)))
                                .collect(),
                            repair_output: signals::repair(dft, id),
                        })
                    } else {
                        None
                    };
                    let spec = ThresholdSpec {
                        name: name.to_owned(),
                        k,
                        inputs: gate.inputs.iter().map(|&c| observable(c)).collect(),
                        firing: own_output(id),
                        repair,
                    };
                    models.push(lift(threshold_gate(&spec)?));
                }
                GateKind::Pand => {
                    let spec = PandSpec {
                        name: name.to_owned(),
                        inputs: gate.inputs.iter().map(|&c| observable(c)).collect(),
                        firing: own_output(id),
                    };
                    models.push(lift(pand_gate(&spec)?));
                }
                GateKind::Spare | GateKind::Seq => {
                    let inputs = gate
                        .inputs
                        .iter()
                        .map(|&child| {
                            let claiming = activation.claiming_gates(child);
                            SpareInput {
                                failure: observable(child),
                                claim: claiming
                                    .contains(&id)
                                    .then(|| signals::claim(dft, child, id)),
                                contenders: claiming
                                    .iter()
                                    .filter(|&&g| g != id)
                                    .map(|&g| signals::claim(dft, child, g))
                                    .collect(),
                            }
                        })
                        .collect();
                    let spec = SpareSpec {
                        name: name.to_owned(),
                        inputs,
                        firing: own_output(id),
                        activation: activation
                            .activation_root(id)
                            .map(|root| signals::activation(dft, root)),
                    };
                    models.push(lift(spare_gate(&spec)?));
                }
                GateKind::Inhibit => {
                    let subject = observable(gate.inputs[0]);
                    let inhibitors: Vec<Action> =
                        gate.inputs[1..].iter().map(|&c| observable(c)).collect();
                    models.push(lift(inhibition_auxiliary(
                        &format!("IA {name}"),
                        subject,
                        &inhibitors,
                        own_output(id),
                    )?));
                }
            },
        }
    }

    // Firing auxiliaries for FDEP-dependent elements.
    for (&dependent, triggers) in &fdep_triggers {
        let mut inputs = vec![signals::isolated_firing(dft, dependent)];
        inputs.extend(triggers.iter().copied());
        models.push(lift(or_auxiliary(
            &format!("FA {}", dft.name(dependent)),
            &inputs,
            signals::firing(dft, dependent),
        )?));
    }

    // Activation auxiliaries for dynamically activated spare-module roots.
    for root in activation.activation_roots(dft) {
        let claims: Vec<Action> = activation
            .claiming_gates(root)
            .iter()
            .map(|&g| signals::claim(dft, root, g))
            .collect();
        if claims.is_empty() {
            return Err(Error::Unsupported {
                message: format!(
                    "element '{}' needs activation but no spare gate ever activates it",
                    dft.name(root)
                ),
            });
        }
        models.push(lift(or_auxiliary(
            &format!("AA {}", dft.name(root)),
            &claims,
            signals::activation(dft, root),
        )?));
    }

    let top_repair = (dft.is_repairable() && emits_repair(dft, dft.top()))
        .then(|| signals::repair(dft, dft.top()));

    Ok(CommunityOf {
        models,
        top_failure: signals::firing(dft, dft.top()),
        top_repair,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    #[test]
    fn and_of_two_events_yields_three_models() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("cv_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("cv_Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("cv_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        assert_eq!(community.len(), 3);
        assert_eq!(community.top_failure.name(), "f_cv_Top");
        assert!(community.top_repair.is_none());
        assert!(!community.is_empty());
        assert!(community.total_states() > 0);
    }

    #[test]
    fn fdep_generates_firing_auxiliaries() {
        let mut b = DftBuilder::new();
        let t = b.basic_event("cv2_T", 1.0, Dormancy::Hot).unwrap();
        let x = b.basic_event("cv2_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("cv2_Y", 1.0, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("cv2_F", t, &[x, y]).unwrap();
        let top = b.and_gate("cv2_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        // T, X, Y, Top, FA_X, FA_Y (the FDEP gate itself has no model).
        assert_eq!(community.len(), 6);
        let names: Vec<&str> = community.models.iter().map(|m| m.name()).collect();
        assert!(names.iter().any(|n| n.starts_with("FA cv2_X")));
        assert!(names.iter().any(|n| n.starts_with("FA cv2_Y")));
        // The AND gate must listen to the auxiliaries' outputs, which exist.
        let and_model = community
            .models
            .iter()
            .find(|m| m.name().contains("cv2_Top"))
            .unwrap();
        assert!(and_model.signature().is_input(Action::new("f_cv2_X")));
    }

    #[test]
    fn shared_spare_generates_an_activation_auxiliary() {
        let mut b = DftBuilder::new();
        let pa = b.basic_event("cv3_PA", 1.0, Dormancy::Hot).unwrap();
        let pb = b.basic_event("cv3_PB", 1.0, Dormancy::Hot).unwrap();
        let ps = b.basic_event("cv3_PS", 1.0, Dormancy::Cold).unwrap();
        let ga = b.spare_gate("cv3_GA", &[pa, ps]).unwrap();
        let gb = b.spare_gate("cv3_GB", &[pb, ps]).unwrap();
        let top = b.and_gate("cv3_Top", &[ga, gb]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        // PA, PB, PS, GA, GB, Top, AA_PS.
        assert_eq!(community.len(), 7);
        let aa = community
            .models
            .iter()
            .find(|m| m.name().starts_with("AA cv3_PS"))
            .unwrap();
        assert!(aa.signature().is_input(Action::new("a_cv3_PS__cv3_GA")));
        assert!(aa.signature().is_input(Action::new("a_cv3_PS__cv3_GB")));
        assert!(aa.signature().is_output(Action::new("a_cv3_PS")));
        // The cold spare listens to its activation signal.
        let ps_model = community
            .models
            .iter()
            .find(|m| m.name() == "BE cv3_PS")
            .unwrap();
        assert!(ps_model.signature().is_input(Action::new("a_cv3_PS")));
    }

    #[test]
    fn fdep_used_as_input_is_rejected() {
        let mut b = DftBuilder::new();
        let t = b.basic_event("cv4_T", 1.0, Dormancy::Hot).unwrap();
        let x = b.basic_event("cv4_X", 1.0, Dormancy::Hot).unwrap();
        let f = b.fdep_gate("cv4_F", t, &[x]).unwrap();
        let top = b.or_gate("cv4_Top", &[f, x]).unwrap();
        let dft = b.build(top).unwrap();
        assert!(matches!(convert(&dft), Err(Error::Unsupported { .. })));
    }

    #[test]
    fn repairable_dynamic_gates_are_rejected() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("cv5_X", 1.0, Dormancy::Hot, 2.0)
            .unwrap();
        let y = b.basic_event("cv5_Y", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("cv5_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        assert!(matches!(convert(&dft), Err(Error::Unsupported { .. })));
    }

    #[test]
    fn repairable_static_tree_exposes_top_repair() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("cv6_X", 1.0, Dormancy::Hot, 2.0)
            .unwrap();
        let y = b
            .repairable_basic_event("cv6_Y", 1.0, Dormancy::Hot, 2.0)
            .unwrap();
        let top = b.and_gate("cv6_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        assert_eq!(community.top_repair.unwrap().name(), "r_cv6_Top");
    }

    #[test]
    fn inhibit_gate_produces_an_inhibition_auxiliary() {
        let mut b = DftBuilder::new();
        let a = b.basic_event("cv7_A", 1.0, Dormancy::Hot).unwrap();
        let bb = b.basic_event("cv7_B", 1.0, Dormancy::Hot).unwrap();
        let inh = b.inhibit_gate("cv7_I", bb, &[a]).unwrap();
        let top = b.or_gate("cv7_Top", &[inh, a]).unwrap();
        let dft = b.build(top).unwrap();
        let community = convert(&dft).unwrap();
        let ia = community
            .models
            .iter()
            .find(|m| m.name().starts_with("IA cv7_I"))
            .unwrap();
        assert!(ia.signature().is_output(Action::new("f_cv7_I")));
    }
}
