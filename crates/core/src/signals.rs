//! Naming conventions for the actions of the I/O-IMC community.
//!
//! Every DFT element `X` communicates through a small set of signals (Section 4 of
//! the paper).  Centralising the name construction here keeps the generators, the
//! conversion and the tests consistent:
//!
//! | signal                | name               | meaning                                            |
//! |-----------------------|--------------------|----------------------------------------------------|
//! | firing                | `f_X`              | `X` has failed (as seen by the rest of the tree)    |
//! | isolated firing       | `fs_X`             | `X` failed *by itself*, before its firing auxiliary |
//! | repair                | `r_X`              | `X` has been repaired                               |
//! | activation            | `a_X`              | `X` (a spare module root) switches to active mode   |
//! | activation claim      | `a_X__G`           | spare gate `G` claims / activates its input `X`     |

use dft::{Dft, ElementId};
use ioimc::Action;

/// The firing (failure) signal of an element, as observed by its parents.
pub fn firing(dft: &Dft, element: ElementId) -> Action {
    Action::new(&format!("f_{}", dft.name(element)))
}

/// The *isolated* firing signal of an element that has a firing auxiliary: the
/// element's own failure before functional dependencies are factored in.
pub fn isolated_firing(dft: &Dft, element: ElementId) -> Action {
    Action::new(&format!("fs_{}", dft.name(element)))
}

/// The repair signal of an element (repairable extension, Section 7.2).
pub fn repair(dft: &Dft, element: ElementId) -> Action {
    Action::new(&format!("r_{}", dft.name(element)))
}

/// The activation signal of a spare-module root: the output of its activation
/// auxiliary, listened to by every element of the module.
pub fn activation(dft: &Dft, element: ElementId) -> Action {
    Action::new(&format!("a_{}", dft.name(element)))
}

/// The claim signal `a_{X,G}`: spare gate `gate` claims (and thereby activates) its
/// input `input`.
pub fn claim(dft: &Dft, input: ElementId, gate: ElementId) -> Action {
    Action::new(&format!("a_{}__{}", dft.name(input), dft.name(gate)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn sample() -> Dft {
        let mut b = DftBuilder::new();
        let p = b.basic_event("P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("S", 1.0, Dormancy::Cold).unwrap();
        let g = b.spare_gate("G", &[p, s]).unwrap();
        b.build(g).unwrap()
    }

    #[test]
    fn names_follow_the_convention() {
        let dft = sample();
        let p = dft.by_name("P").unwrap();
        let s = dft.by_name("S").unwrap();
        let g = dft.by_name("G").unwrap();
        assert_eq!(firing(&dft, p).name(), "f_P");
        assert_eq!(isolated_firing(&dft, p).name(), "fs_P");
        assert_eq!(repair(&dft, p).name(), "r_P");
        assert_eq!(activation(&dft, s).name(), "a_S");
        assert_eq!(claim(&dft, s, g).name(), "a_S__G");
    }

    #[test]
    fn distinct_elements_get_distinct_signals() {
        let dft = sample();
        let p = dft.by_name("P").unwrap();
        let s = dft.by_name("S").unwrap();
        assert_ne!(firing(&dft, p), firing(&dft, s));
        assert_ne!(firing(&dft, p), isolated_firing(&dft, p));
        assert_ne!(firing(&dft, p), repair(&dft, p));
    }
}
