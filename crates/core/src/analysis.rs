//! System-level reliability measures — the legacy one-shot entry points.
//!
//! This module wires the pipeline of the paper end to end:
//!
//! ```text
//! DFT ──convert──▶ I/O-IMC community ──aggregate──▶ single I/O-IMC
//!     ──extract──▶ CTMC / CTMDP ──uniformisation──▶ unreliability
//!                                ──steady state──▶ unavailability
//! ```
//!
//! Two analysis methods are offered: the paper's **compositional aggregation** and
//! the DIFTree-style **monolithic** baseline ([`crate::baseline`]), selectable via
//! [`AnalysisOptions::method`] so that benchmarks can compare both on the same DFT.
//!
//! # Prefer the [`Analyzer`] session API
//!
//! [`unreliability`], [`unavailability`] and [`mean_time_to_failure`] are
//! **deprecated**: they are retained for backwards compatibility, but each call
//! rebuilds the whole aggregation pipeline from scratch.  They are now thin wrappers that construct a one-shot
//! [`Analyzer`] and immediately discard it, so they
//! return exactly the engine's values — at N times the construction cost when
//! asked N questions.  New code, and anything that sweeps mission times or mixes
//! measures, should build one [`Analyzer`] and query it:
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::engine::Analyzer;
//! use dft_core::query::Measure;
//! use dft_core::AnalysisOptions;
//!
//! # fn main() -> Result<(), dft_core::Error> {
//! # let mut b = DftBuilder::new();
//! # let x = b.basic_event("doc_X", 1.0, Dormancy::Hot)?;
//! # let top = b.or_gate("doc_Top", &[x])?;
//! # let dft = b.build(top)?;
//! let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;   // build once
//! let curve = analyzer.query(Measure::curve([0.5, 1.0, 2.0]))?;
//! # assert_eq!(curve.len(), 3);
//! # Ok(())
//! # }
//! ```

use crate::aggregate::{aggregate, AggregationOptions, AggregationStats};
use crate::convert::convert;
use crate::engine::Analyzer;
use crate::{Error, Result};
use dft::Dft;
use ioimc::stats::ModelStats;
use ioimc::{Action, IoImc};

/// Which algorithm computes the measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Compositional aggregation through I/O-IMCs (the paper's approach).
    #[default]
    Compositional,
    /// Direct generation of one CTMC for the whole tree (DIFTree-style baseline).
    Monolithic,
    /// Hybrid static/dynamic decomposition: maximal dynamic cores are analysed
    /// compositionally, the static crown above them is solved combinatorially
    /// on a BDD (see [`dft::modules::hybrid_plan`]).  Exact — and typically
    /// orders of magnitude smaller in state space — for unrepairable trees
    /// whose dynamic cores are deterministic; repairable or non-deterministic
    /// trees silently fall back to the full compositional pipeline, so the
    /// method is always safe to request.
    Hybrid,
}

/// Options shared by the analyses.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Truncation error bound for the numerical transient/steady-state analysis.
    pub epsilon: f64,
    /// Analysis method.
    pub method: Method,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            epsilon: 1e-9,
            method: Method::Compositional,
        }
    }
}

/// The result of an unreliability analysis.
#[derive(Debug, Clone)]
pub struct UnreliabilityResult {
    point: Option<f64>,
    bounds: (f64, f64),
    nondeterministic: bool,
    aggregation: Option<AggregationStats>,
    final_model: ModelStats,
}

impl UnreliabilityResult {
    /// The unreliability value.
    ///
    /// For a deterministic model this is the exact probability; for a
    /// non-deterministic model (CTMDP) the pessimistic upper bound is returned —
    /// use [`bounds`](Self::bounds) to see the full interval.
    pub fn probability(&self) -> f64 {
        self.point.unwrap_or(self.bounds.1)
    }

    /// Lower and upper bounds on the unreliability (equal for deterministic
    /// models, up to numerical truncation error).
    pub fn bounds(&self) -> (f64, f64) {
        self.bounds
    }

    /// Returns `true` if the final model contained immediate non-determinism and
    /// had to be analysed as a CTMDP.
    pub fn is_nondeterministic(&self) -> bool {
        self.nondeterministic
    }

    /// Statistics of the compositional aggregation run (absent for the monolithic
    /// method).
    pub fn aggregation_stats(&self) -> Option<&AggregationStats> {
        self.aggregation.as_ref()
    }

    /// Size of the final analysed model (the aggregated I/O-IMC or the monolithic
    /// CTMC).
    pub fn final_model_stats(&self) -> ModelStats {
        self.final_model
    }
}

/// The result of an unavailability analysis of a repairable DFT.
#[derive(Debug, Clone)]
pub struct UnavailabilityResult {
    /// Long-run probability that the system is down.
    pub unavailability: f64,
    /// Statistics of the compositional aggregation run.
    pub aggregation: Option<AggregationStats>,
    /// Size of the final analysed model.
    pub final_model: ModelStats,
}

/// Computes the system unreliability: the probability that the top event has
/// occurred by `mission_time`.
///
/// This one-shot wrapper rebuilds the model on every call.  Prefer an
/// [`Analyzer`] session ([`Analyzer::unreliability`]) — it pays aggregation
/// once and answers any number of queries — or describe the whole analysis
/// as an [`AnalysisRequest`](crate::request::AnalysisRequest) and run it via
/// [`AnalysisService::run_request`](crate::service::AnalysisService::run_request).
///
/// # Errors
///
/// Propagates conversion, aggregation and numerical errors; returns
/// [`Error::Unsupported`] for DFT features outside the translation's scope.
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::analysis::AnalysisOptions;
/// # fn main() -> Result<(), dft_core::Error> {
/// # #[allow(deprecated)]
/// # fn run() -> Result<(), dft_core::Error> {
/// use dft_core::analysis::unreliability;
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("lamp", 0.1, Dormancy::Hot)?;
/// let top = b.or_gate("system", &[x])?;
/// let dft = b.build(top)?;
/// let r = unreliability(&dft, 2.0, &AnalysisOptions::default())?;
/// assert!((r.probability() - (1.0 - (-0.2f64).exp())).abs() < 1e-6);
/// # Ok(())
/// # }
/// # run()
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use an `Analyzer` session (`Analyzer::unreliability`) or \
            `AnalysisService::run_request`"
)]
pub fn unreliability(
    dft: &Dft,
    mission_time: f64,
    options: &AnalysisOptions,
) -> Result<UnreliabilityResult> {
    let analyzer = Analyzer::new(dft, options.clone())?;
    let result = analyzer.unreliability(mission_time)?;
    let point = result.points()[0];
    Ok(UnreliabilityResult {
        point: point.point(),
        bounds: point.bounds(),
        nondeterministic: point.is_nondeterministic(),
        aggregation: analyzer.aggregation_stats().cloned(),
        final_model: analyzer.model_stats(),
    })
}

/// Computes the long-run unavailability of a repairable DFT: the steady-state
/// probability that the top event is currently failed.
///
/// This one-shot wrapper rebuilds the model on every call.  Prefer an
/// [`Analyzer`] session ([`Analyzer::unavailability`]) or
/// [`AnalysisService::run_request`](crate::service::AnalysisService::run_request).
///
/// # Errors
///
/// Returns [`Error::Unsupported`] if the DFT is not repairable (no repair rates) or
/// uses dynamic gates, and propagates numerical errors.
#[deprecated(
    since = "0.2.0",
    note = "use an `Analyzer` session (`Analyzer::unavailability`) or \
            `AnalysisService::run_request`"
)]
pub fn unavailability(dft: &Dft, options: &AnalysisOptions) -> Result<UnavailabilityResult> {
    if !dft.is_repairable() {
        return Err(Error::Unsupported {
            message: "unavailability analysis needs at least one repairable basic event".to_owned(),
        });
    }
    match options.method {
        // Hybrid sessions over repairable trees fall back to the full
        // compositional pipeline, which serves unavailability.
        Method::Compositional | Method::Hybrid => {}
        Method::Monolithic => {
            return Err(Error::Unsupported {
                message: "the monolithic baseline only supports unreliability analysis".to_owned(),
            })
        }
    }
    let analyzer = Analyzer::new(dft, options.clone())?;
    let result = analyzer.unavailability()?;
    Ok(UnavailabilityResult {
        unavailability: result.value(),
        aggregation: analyzer.aggregation_stats().cloned(),
        final_model: analyzer.model_stats(),
    })
}

/// Computes the mean time to failure (MTTF): the expected time until the top event
/// occurs.
///
/// Returns `f64::INFINITY` when the system survives forever with positive
/// probability (e.g. a PAND gate whose inputs may fail in the wrong order).
///
/// # Errors
///
/// Returns [`Error::Nondeterministic`] if the final model is a CTMDP (the MTTF is
/// then not a single number), and propagates conversion/numerical errors.
///
/// This one-shot wrapper rebuilds the model on every call.  Prefer an
/// [`Analyzer`] session ([`Analyzer::mttf`]) or
/// [`AnalysisService::run_request`](crate::service::AnalysisService::run_request).
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::analysis::AnalysisOptions;
/// # fn main() -> Result<(), dft_core::Error> {
/// # #[allow(deprecated)]
/// # fn run() -> Result<(), dft_core::Error> {
/// use dft_core::analysis::mean_time_to_failure;
/// let mut b = DftBuilder::new();
/// let p = b.basic_event("P", 2.0, Dormancy::Hot)?;
/// let s = b.basic_event("S", 2.0, Dormancy::Cold)?;
/// let top = b.spare_gate("Top", &[p, s])?;
/// let dft = b.build(top)?;
/// let mttf = mean_time_to_failure(&dft, &AnalysisOptions::default())?;
/// assert!((mttf - 1.0).abs() < 1e-6); // two cold stages of mean 1/2 each
/// # Ok(())
/// # }
/// # run()
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use an `Analyzer` session (`Analyzer::mttf`) or \
            `AnalysisService::run_request`"
)]
pub fn mean_time_to_failure(dft: &Dft, options: &AnalysisOptions) -> Result<f64> {
    Ok(Analyzer::new(dft, options.clone())?.mttf()?.value())
}

/// Convenience helper: the number of states of the final aggregated model for a
/// DFT, used by the benchmark harness when only sizes are of interest.
///
/// # Errors
///
/// Same as [`unreliability`].
pub fn aggregated_model(dft: &Dft) -> Result<(IoImc, AggregationStats)> {
    let community = convert(dft)?;
    aggregate(
        &community.models,
        &AggregationOptions {
            keep: vec![community.top_failure],
            ..AggregationOptions::default()
        },
    )
}

/// Returns the community and the observable top-failure action for callers that
/// want to drive the pipeline manually (examples, experiments).
///
/// # Errors
///
/// Same as [`convert`].
pub fn community_of(dft: &Dft) -> Result<(Vec<IoImc>, Action)> {
    let community = convert(dft)?;
    Ok((community.models, community.top_failure))
}

#[cfg(test)]
// These tests pin the one-shot wrappers' behaviour for as long as they exist.
#[allow(deprecated)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn exp_cdf(rate: f64, t: f64) -> f64 {
        1.0 - (-rate * t).exp()
    }

    #[test]
    fn single_event_or_gate_is_exponential() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("an_X", 0.7, Dormancy::Hot).unwrap();
        let top = b.or_gate("an_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let r = unreliability(&dft, 1.5, &AnalysisOptions::default()).unwrap();
        assert!(!r.is_nondeterministic());
        assert!((r.probability() - exp_cdf(0.7, 1.5)).abs() < 1e-7);
        let (lo, hi) = r.bounds();
        assert!((lo - hi).abs() < 1e-7);
        assert!(r.aggregation_stats().is_some());
        assert!(r.final_model_stats().states > 0);
    }

    #[test]
    fn and_gate_multiplies_probabilities() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("an2_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("an2_Y", 2.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("an2_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 0.8;
        let r = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let exact = exp_cdf(1.0, t) * exp_cdf(2.0, t);
        assert!(
            (r.probability() - exact).abs() < 1e-7,
            "{} vs {exact}",
            r.probability()
        );
    }

    #[test]
    fn compositional_and_monolithic_agree_on_a_static_tree() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("an3_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("an3_Y", 0.5, Dormancy::Hot).unwrap();
        let z = b.basic_event("an3_Z", 2.0, Dormancy::Hot).unwrap();
        let lower = b.and_gate("an3_And", &[x, y]).unwrap();
        let top = b.or_gate("an3_Top", &[lower, z]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 1.0;
        let comp = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let mono = unreliability(
            &dft,
            t,
            &AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!(
            (comp.probability() - mono.probability()).abs() < 1e-6,
            "compositional {} vs monolithic {}",
            comp.probability(),
            mono.probability()
        );
    }

    #[test]
    fn cold_spare_gives_erlang_failure_time() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("an4_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("an4_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("an4_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 1.0;
        let r = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        // Erlang(2, 1): 1 - e^-t (1 + t).
        let exact = 1.0 - (-t).exp() * (1.0 + t);
        assert!(
            (r.probability() - exact).abs() < 1e-6,
            "{} vs {exact}",
            r.probability()
        );
    }

    #[test]
    fn hot_spare_behaves_like_an_and_gate() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("an5_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("an5_S", 1.0, Dormancy::Hot).unwrap();
        let top = b.spare_gate("an5_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 0.7;
        let r = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        let exact = exp_cdf(1.0, t) * exp_cdf(1.0, t);
        assert!((r.probability() - exact).abs() < 1e-6);
    }

    #[test]
    fn pand_gate_counts_only_ordered_failures() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("an6_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("an6_Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.pand_gate("an6_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 10.0;
        let r = unreliability(&dft, t, &AnalysisOptions::default()).unwrap();
        // With identical rates, X fails before Y with probability 1/2; for a very
        // long mission time the unreliability tends to 1/2.
        assert!((r.probability() - 0.5).abs() < 2e-3, "{}", r.probability());
    }

    #[test]
    fn unavailability_of_a_single_repairable_component() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("an7_X", 1.0, Dormancy::Hot, 9.0)
            .unwrap();
        let top = b.or_gate("an7_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let r = unavailability(&dft, &AnalysisOptions::default()).unwrap();
        assert!(
            (r.unavailability - 0.1).abs() < 1e-6,
            "{}",
            r.unavailability
        );
    }

    #[test]
    fn unavailability_requires_repairable_events() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("an8_X", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("an8_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        assert!(matches!(
            unavailability(&dft, &AnalysisOptions::default()),
            Err(Error::Unsupported { .. })
        ));
    }

    #[test]
    fn mttf_of_basic_structures() {
        // OR of two hot events: exponential race, MTTF = 1/(λ1+λ2).
        let mut b = DftBuilder::new();
        let x = b.basic_event("mt_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("mt_Y", 3.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("mt_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let mttf = mean_time_to_failure(&dft, &AnalysisOptions::default()).unwrap();
        assert!((mttf - 0.25).abs() < 1e-6, "{mttf}");
        let mono = mean_time_to_failure(
            &dft,
            &AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!((mono - 0.25).abs() < 1e-6);

        // AND of two identical hot events: MTTF of max of two exponentials = 3/(2λ).
        let mut b = DftBuilder::new();
        let x = b.basic_event("mt2_X", 2.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("mt2_Y", 2.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("mt2_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let mttf = mean_time_to_failure(&dft, &AnalysisOptions::default()).unwrap();
        assert!((mttf - 0.75).abs() < 1e-6, "{mttf}");
    }

    #[test]
    fn mttf_of_a_pand_can_be_infinite() {
        // With probability 1/2 the PAND never fires, so the expected failure time
        // is infinite.
        let mut b = DftBuilder::new();
        let x = b.basic_event("mt3_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("mt3_Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.pand_gate("mt3_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let mttf = mean_time_to_failure(&dft, &AnalysisOptions::default()).unwrap();
        assert!(mttf.is_infinite());
    }

    #[test]
    fn fdep_makes_dependents_fail_with_the_trigger() {
        // Top = AND(X, Y), both functionally dependent on T.  The system fails as
        // soon as T fails (or when both X and Y fail by themselves).
        let mut b = DftBuilder::new();
        let t = b.basic_event("an9_T", 0.5, Dormancy::Hot).unwrap();
        let x = b.basic_event("an9_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("an9_Y", 1.0, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("an9_F", t, &[x, y]).unwrap();
        let top = b.and_gate("an9_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let horizon = 1.0;
        let r = unreliability(&dft, horizon, &AnalysisOptions::default()).unwrap();
        // P(fail) = P(T <= t) + P(T > t) P(X <= t) P(Y <= t) for independent events?
        // Not quite: X and Y may fail before T as well; the exact value is
        // P(min(T, max(X,Y)) <= t) with T ~ exp(0.5), X,Y ~ exp(1):
        //   1 - P(T > t) P(max(X,Y) > t)  does not hold either (max(X,Y) > t is not
        //   independent of the failure path), so just compare against the
        //   monolithic baseline which implements the textbook semantics directly.
        let mono = unreliability(
            &dft,
            horizon,
            &AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!(
            (r.probability() - mono.probability()).abs() < 1e-6,
            "compositional {} vs monolithic {}",
            r.probability(),
            mono.probability()
        );
        // And the failure probability must exceed that of the AND gate alone.
        let and_only = exp_cdf(1.0, horizon) * exp_cdf(1.0, horizon);
        assert!(r.probability() > and_only);
    }
}
