//! The DIFTree-style monolithic baseline.
//!
//! Section 4 of the paper describes how the original DIFTree/Galileo tool converts
//! a dynamic module into a Markov chain: starting from the state in which every
//! basic event is operational, each operational basic event is failed in turn
//! (with its current failure rate), the consequences are propagated through the
//! tree (functional dependencies, spare switching, priority checks) and the
//! resulting state is added to the chain; failed system states are absorbing.
//! Because every state carries the status vector of *all* basic events, the chain
//! grows exponentially with the number of basic events — which is precisely the
//! state-space-explosion problem the compositional approach mitigates.
//!
//! This module reimplements that algorithm faithfully enough to serve as (a) a
//! correctness cross-check for the compositional pipeline and (b) the comparison
//! point for the state-space numbers reported in Sections 5.1 and 5.2.
//!
//! Deliberate deviations, documented here:
//!
//! * simultaneous failures caused by an FDEP trigger are applied deterministically
//!   in input order (DIFTree and [Coppit et al. 2000] resolve the non-determinism
//!   the same way; the compositional pipeline instead reports bounds);
//! * only the classical element set is supported (BE, AND, OR, voting, PAND,
//!   spare, SEQ, FDEP with basic-event dependents); inhibition, repair and complex
//!   spares are extensions that DIFTree does not have.

use crate::activation::ActivationAnalysis;
use crate::{Error, Result};
use dft::{Dft, Element, ElementId, GateKind};
use markov::Ctmc;
use std::collections::HashMap;

/// The monolithic CTMC of a DFT, with its goal (system-failed) states.
#[derive(Debug, Clone)]
pub struct MonolithicResult {
    /// The generated chain.
    pub ctmc: Ctmc,
    /// `goal[s]` is `true` when the top event has occurred in state `s`.
    pub goal: Vec<bool>,
}

impl MonolithicResult {
    /// Number of states of the monolithic chain.
    pub fn num_states(&self) -> usize {
        self.ctmc.num_states()
    }

    /// Number of transitions of the monolithic chain.
    pub fn num_transitions(&self) -> usize {
        self.ctmc.num_transitions()
    }

    /// Unreliability at `mission_time`, computed on the generated chain.
    ///
    /// # Errors
    ///
    /// Propagates numerical errors of the transient analysis.
    pub fn unreliability(&self, mission_time: f64, epsilon: f64) -> Result<f64> {
        Ok(self.ctmc.reachability(&self.goal, mission_time, epsilon)?)
    }

    /// Unreliability at every listed mission time in a single uniformisation pass
    /// — the monolithic counterpart of
    /// [`Measure::UnreliabilityCurve`](crate::query::Measure::UnreliabilityCurve).
    ///
    /// # Errors
    ///
    /// Propagates numerical errors of the transient analysis.
    pub fn unreliability_curve(&self, mission_times: &[f64], epsilon: f64) -> Result<Vec<f64>> {
        Ok(self
            .ctmc
            .reachability_multi(&self.goal, mission_times, epsilon)?)
    }
}

/// One global state of the monolithic exploration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SysState {
    /// Failure status per basic event (indexed by position in `bes`).
    pub(crate) failed: Vec<bool>,
    /// Per spare-like gate: index of the input the gate currently relies on, or
    /// `None` when all inputs are exhausted (the gate has failed).
    spare_using: Vec<Option<u8>>,
    /// Per PAND gate: whether an out-of-order failure has permanently disabled it.
    pand_dead: Vec<bool>,
}

pub(crate) struct Explorer<'a> {
    dft: &'a Dft,
    activation: ActivationAnalysis,
    /// Basic events in element order; positions index `SysState::failed`.
    bes: Vec<ElementId>,
    be_index: HashMap<ElementId, usize>,
    /// Spare-like gates in element order; positions index `SysState::spare_using`.
    spare_gates: Vec<ElementId>,
    spare_index: HashMap<ElementId, usize>,
    /// PAND gates in element order; positions index `SysState::pand_dead`.
    pand_gates: Vec<ElementId>,
    pand_index: HashMap<ElementId, usize>,
    /// FDEP gates: (trigger, dependents).
    fdeps: Vec<(ElementId, Vec<ElementId>)>,
}

fn check_supported(dft: &Dft) -> Result<()> {
    if dft.is_repairable() {
        return Err(Error::Unsupported {
            message: "the monolithic baseline does not support repairable events".to_owned(),
        });
    }
    for id in dft.elements() {
        if let Some(gate) = dft.element(id).as_gate() {
            match gate.kind {
                GateKind::Inhibit => {
                    return Err(Error::Unsupported {
                        message: format!(
                            "the monolithic baseline does not support the inhibition gate '{}'",
                            dft.name(id)
                        ),
                    })
                }
                GateKind::Fdep => {
                    for &dep in &gate.inputs[1..] {
                        if dft.element(dep).as_basic_event().is_none() {
                            return Err(Error::Unsupported {
                                message: format!(
                                    "the monolithic baseline only supports basic events as FDEP \
                                     dependents; '{}' is a gate",
                                    dft.name(dep)
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

impl<'a> Explorer<'a> {
    pub(crate) fn new(dft: &'a Dft) -> Result<Explorer<'a>> {
        check_supported(dft)?;
        let activation = ActivationAnalysis::analyze(dft)?;
        let bes = dft.basic_events();
        let be_index = bes.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let spare_gates: Vec<ElementId> = dft
            .elements()
            .filter(|&e| {
                matches!(
                    dft.element(e).as_gate().map(|g| g.kind),
                    Some(GateKind::Spare) | Some(GateKind::Seq)
                )
            })
            .collect();
        let spare_index = spare_gates
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i))
            .collect();
        let pand_gates = dft.gates_of_kind(GateKind::Pand);
        let pand_index = pand_gates
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i))
            .collect();
        let fdeps = dft
            .fdep_gates()
            .into_iter()
            .map(|f| {
                let inputs = dft.element(f).inputs();
                (inputs[0], inputs[1..].to_vec())
            })
            .collect();
        Ok(Explorer {
            dft,
            activation,
            bes,
            be_index,
            spare_gates,
            spare_index,
            pand_gates,
            pand_index,
            fdeps,
        })
    }

    /// The basic events of the tree, in the order used by `SysState::failed`.
    pub(crate) fn basic_events(&self) -> &[ElementId] {
        &self.bes
    }

    pub(crate) fn initial_state(&self) -> SysState {
        SysState {
            failed: vec![false; self.bes.len()],
            spare_using: vec![Some(0); self.spare_gates.len()],
            pand_dead: vec![false; self.pand_gates.len()],
        }
    }

    /// Whether `element` (gate or basic event) counts as failed in `state`.
    pub(crate) fn element_failed(&self, state: &SysState, element: ElementId) -> bool {
        match self.dft.element(element) {
            Element::BasicEvent(_) => state.failed[self.be_index[&element]],
            Element::Gate(gate) => match gate.kind {
                GateKind::And => gate.inputs.iter().all(|&c| self.element_failed(state, c)),
                GateKind::Or => gate.inputs.iter().any(|&c| self.element_failed(state, c)),
                GateKind::Voting { k } => {
                    gate.inputs
                        .iter()
                        .filter(|&&c| self.element_failed(state, c))
                        .count()
                        >= k as usize
                }
                GateKind::Pand => {
                    !state.pand_dead[self.pand_index[&element]]
                        && gate.inputs.iter().all(|&c| self.element_failed(state, c))
                }
                GateKind::Spare | GateKind::Seq => {
                    state.spare_using[self.spare_index[&element]].is_none()
                }
                GateKind::Fdep => false, // dummy output
                GateKind::Inhibit => unreachable!("rejected by check_supported"),
            },
        }
    }

    /// Whether `element` is currently in its active (as opposed to dormant) mode.
    fn element_active(&self, state: &SysState, element: ElementId) -> bool {
        match self.activation.activation_root(element) {
            None => true,
            Some(root) => {
                // The root is active when some spare-like gate currently relies on
                // it and that gate is itself active.
                self.spare_gates.iter().enumerate().any(|(gi, &gate)| {
                    let using = state.spare_using[gi];
                    let inputs = self.dft.element(gate).inputs();
                    matches!(using, Some(j) if inputs[j as usize] == root)
                        && self.element_active(state, gate)
                })
            }
        }
    }

    /// The current failure rate of basic event `be` in `state` (0 when it cannot
    /// fail, e.g. a dormant cold spare).
    pub(crate) fn be_rate(&self, state: &SysState, be: ElementId) -> f64 {
        let data = self
            .dft
            .element(be)
            .as_basic_event()
            .expect("be list holds basic events");
        if self.element_active(state, be) {
            data.rate
        } else {
            data.dormant_rate()
        }
    }

    /// Applies the failure of basic event `be`, propagating functional dependencies
    /// and updating gate memory, and returns the successor state.
    pub(crate) fn apply_failure(&self, state: &SysState, be: ElementId) -> SysState {
        let mut next = state.clone();

        // 1. Collect the set of basic events failing in this step: the failing
        //    event plus FDEP-dependent events whose trigger has (now) fired.  A
        //    cascade may enable further FDEPs, so iterate to a fixpoint.
        let mut newly_failed: Vec<ElementId> = Vec::new();
        let fail_be = |s: &mut SysState, e: ElementId, acc: &mut Vec<ElementId>| {
            let idx = self.be_index[&e];
            if !s.failed[idx] {
                s.failed[idx] = true;
                acc.push(e);
            }
        };
        fail_be(&mut next, be, &mut newly_failed);
        loop {
            let mut changed = false;
            for (trigger, dependents) in &self.fdeps {
                if self.element_failed(&next, *trigger) {
                    for &dep in dependents {
                        let idx = self.be_index[&dep];
                        if !next.failed[idx] {
                            next.failed[idx] = true;
                            newly_failed.push(dep);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // 2. Update PAND memory: a PAND dies when one of its inputs is failed while
        //    an earlier input is still operational.  Failures within the same step
        //    are resolved deterministically in left-to-right order, so only inputs
        //    that remain operational after the whole step count as "earlier and not
        //    yet failed".
        for (pi, &pand) in self.pand_gates.iter().enumerate() {
            if next.pand_dead[pi] {
                continue;
            }
            let inputs = self.dft.element(pand).inputs();
            let statuses: Vec<bool> = inputs
                .iter()
                .map(|&c| self.element_failed(&next, c))
                .collect();
            let previously: Vec<bool> = inputs
                .iter()
                .map(|&c| self.element_failed(state, c))
                .collect();
            for j in 0..inputs.len() {
                let newly = statuses[j] && !previously[j];
                if newly && statuses[..j].iter().any(|&failed| !failed) {
                    next.pand_dead[pi] = true;
                }
            }
        }

        // 3. Update spare allocations.  Gates whose current input has failed (or
        //    been taken) advance to the next usable input; contention is resolved
        //    deterministically in gate order.  Iterate to a fixpoint because a
        //    gate's switch can make another gate's candidate unavailable.
        loop {
            let mut changed = false;
            for (gi, &gate) in self.spare_gates.iter().enumerate() {
                let Some(cur) = next.spare_using[gi] else {
                    continue;
                };
                let inputs = self.dft.element(gate).inputs();
                let cur_element = inputs[cur as usize];
                let cur_failed = self.element_failed(&next, cur_element);
                let cur_taken_by_other = self.taken_by_other(&next, gi, cur_element);
                if !cur_failed && !cur_taken_by_other {
                    continue;
                }
                // Find the next usable input.
                let mut chosen: Option<u8> = None;
                for (j, &candidate) in inputs.iter().enumerate().skip(cur as usize + 1) {
                    if self.element_failed(&next, candidate) {
                        continue;
                    }
                    if self.taken_by_other(&next, gi, candidate) {
                        continue;
                    }
                    chosen = Some(j as u8);
                    break;
                }
                if next.spare_using[gi] != chosen {
                    next.spare_using[gi] = chosen;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        next
    }

    /// Whether `element` is currently relied upon by a spare-like gate other than
    /// the one at position `gate_index`.
    fn taken_by_other(&self, state: &SysState, gate_index: usize, element: ElementId) -> bool {
        self.spare_gates.iter().enumerate().any(|(other, &gate)| {
            if other == gate_index {
                return false;
            }
            let inputs = self.dft.element(gate).inputs();
            match state.spare_using[other] {
                Some(j) => {
                    // Relying on the primary does not "take" it from anyone unless
                    // it is genuinely shared; relying on a spare does.
                    inputs[j as usize] == element && (j > 0 || inputs[0] == element)
                }
                None => false,
            }
        })
    }

    fn explore(&self) -> Result<MonolithicResult> {
        let mut index: HashMap<SysState, u32> = HashMap::new();
        let mut goal: Vec<bool> = Vec::new();
        let mut transitions: Vec<(u32, u32, f64)> = Vec::new();
        let mut worklist: Vec<SysState> = Vec::new();

        let initial = self.initial_state();
        index.insert(initial.clone(), 0);
        goal.push(self.element_failed(&initial, self.dft.top()));
        worklist.push(initial);

        while let Some(state) = worklist.pop() {
            let from = index[&state];
            if goal[from as usize] {
                continue; // failed system states are absorbing
            }
            for (bi, &be) in self.bes.iter().enumerate() {
                if state.failed[bi] {
                    continue;
                }
                let rate = self.be_rate(&state, be);
                if rate <= 0.0 {
                    continue;
                }
                let successor = self.apply_failure(&state, be);
                let to = match index.get(&successor) {
                    Some(&id) => id,
                    None => {
                        let id = index.len() as u32;
                        index.insert(successor.clone(), id);
                        goal.push(self.element_failed(&successor, self.dft.top()));
                        worklist.push(successor);
                        id
                    }
                };
                transitions.push((from, to, rate));
            }
        }

        let ctmc = Ctmc::from_transitions(index.len(), 0, &transitions)?;
        Ok(MonolithicResult { ctmc, goal })
    }
}

/// Generates the monolithic CTMC of a DFT, DIFTree-style.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for extensions DIFTree does not have (repair,
/// inhibition, gates as FDEP dependents) and propagates numerical construction
/// errors.
pub fn monolithic_ctmc(dft: &Dft) -> Result<MonolithicResult> {
    Explorer::new(dft)?.explore()
}

/// Convenience wrapper: unreliability at `mission_time` computed on the monolithic
/// chain.
///
/// # Errors
///
/// Same as [`monolithic_ctmc`], plus numerical errors of the transient analysis.
pub fn monolithic_unreliability(dft: &Dft, mission_time: f64, epsilon: f64) -> Result<f64> {
    monolithic_ctmc(dft)?.unreliability(mission_time, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn exp_cdf(rate: f64, t: f64) -> f64 {
        1.0 - (-rate * t).exp()
    }

    #[test]
    fn and_gate_state_space_is_exponential_in_events() {
        let mut b = DftBuilder::new();
        let events: Vec<_> = (0..4)
            .map(|i| {
                b.basic_event(&format!("bl_E{i}"), 1.0, Dormancy::Hot)
                    .unwrap()
            })
            .collect();
        let top = b.and_gate("bl_Top", &events).unwrap();
        let dft = b.build(top).unwrap();
        let result = monolithic_ctmc(&dft).unwrap();
        // All 2^4 subsets are reachable (the all-failed state is the goal).
        assert_eq!(result.num_states(), 16);
        assert_eq!(result.goal.iter().filter(|&&g| g).count(), 1);
    }

    #[test]
    fn or_gate_fails_fast() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("bl2_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("bl2_Y", 2.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("bl2_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 0.5;
        let p = monolithic_unreliability(&dft, t, 1e-10).unwrap();
        assert!((p - exp_cdf(3.0, t)).abs() < 1e-8);
    }

    #[test]
    fn cold_spare_cannot_fail_while_dormant() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("bl3_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("bl3_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("bl3_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let t = 1.0;
        let unrel = monolithic_unreliability(&dft, t, 1e-10).unwrap();
        let erlang = 1.0 - (-t).exp() * (1.0 + t);
        assert!((unrel - erlang).abs() < 1e-8, "{unrel} vs {erlang}");
    }

    #[test]
    fn warm_spare_uses_reduced_dormant_rate() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("bl4_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("bl4_S", 1.0, Dormancy::Warm(0.5)).unwrap();
        let top = b.spare_gate("bl4_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let result = monolithic_ctmc(&dft).unwrap();
        // From the initial state, the dormant spare fails at rate 0.5.
        let initial_exit = result.ctmc.exit_rate(result.ctmc.initial());
        assert!((initial_exit - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pand_ignores_wrong_order() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("bl5_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("bl5_Y", 1.0, Dormancy::Hot).unwrap();
        let top = b.pand_gate("bl5_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let p = monolithic_unreliability(&dft, 50.0, 1e-10).unwrap();
        assert!((p - 0.5).abs() < 1e-3, "{p}");
    }

    #[test]
    fn shared_spare_serves_only_one_gate() {
        // Two spare gates sharing one cold spare; the system (AND of both) fails
        // when all three components are gone.
        let mut b = DftBuilder::new();
        let pa = b.basic_event("bl6_PA", 1.0, Dormancy::Hot).unwrap();
        let pb = b.basic_event("bl6_PB", 1.0, Dormancy::Hot).unwrap();
        let ps = b.basic_event("bl6_PS", 1.0, Dormancy::Cold).unwrap();
        let ga = b.spare_gate("bl6_GA", &[pa, ps]).unwrap();
        let gb = b.spare_gate("bl6_GB", &[pb, ps]).unwrap();
        let top = b.and_gate("bl6_Top", &[ga, gb]).unwrap();
        let dft = b.build(top).unwrap();
        let result = monolithic_ctmc(&dft).unwrap();
        // The goal requires PA, PB and PS all failed (PS only after activation).
        assert!(result.num_states() >= 6);
        let p = monolithic_unreliability(&dft, 1.0, 1e-10).unwrap();
        assert!(p > 0.0 && p < 1.0);
        // The unreliability must be below that of the system without the spare
        // (plain AND of PA and PB) because the spare only helps.
        let and_only = exp_cdf(1.0, 1.0) * exp_cdf(1.0, 1.0);
        assert!(p < and_only);
    }

    #[test]
    fn fdep_trigger_fails_its_dependents() {
        let mut b = DftBuilder::new();
        let t = b.basic_event("bl7_T", 0.5, Dormancy::Hot).unwrap();
        let x = b.basic_event("bl7_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("bl7_Y", 1.0, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("bl7_F", t, &[x, y]).unwrap();
        let top = b.and_gate("bl7_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let p = monolithic_unreliability(&dft, 1.0, 1e-10).unwrap();
        // Failing the trigger alone fails the system, so unreliability is at least
        // the trigger's failure probability.
        assert!(p >= exp_cdf(0.5, 1.0) - 1e-9);
    }

    #[test]
    fn unsupported_features_are_rejected() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("bl8_X", 1.0, Dormancy::Hot, 1.0)
            .unwrap();
        let top = b.or_gate("bl8_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        assert!(matches!(
            monolithic_ctmc(&dft),
            Err(Error::Unsupported { .. })
        ));

        let mut b2 = DftBuilder::new();
        let a = b2.basic_event("bl9_A", 1.0, Dormancy::Hot).unwrap();
        let c = b2.basic_event("bl9_B", 1.0, Dormancy::Hot).unwrap();
        let inh = b2.inhibit_gate("bl9_I", c, &[a]).unwrap();
        let top = b2.or_gate("bl9_Top", &[inh, a]).unwrap();
        let dft2 = b2.build(top).unwrap();
        assert!(matches!(
            monolithic_ctmc(&dft2),
            Err(Error::Unsupported { .. })
        ));
    }
}
