//! Monte-Carlo estimation of DFT measures.
//!
//! Compositional aggregation keeps state spaces small, but very large or very
//! highly connected DFTs (the negative case the paper mentions at the end of
//! Section 5.2) can still exceed what numerical analysis handles comfortably.
//! This module provides a discrete-event Monte-Carlo estimator for the
//! unreliability as a pragmatic fallback and as a statistical cross-check of the
//! analytical pipelines.
//!
//! The simulator shares the failure-propagation logic (FDEP cascades, spare
//! switching, PAND ordering) with the monolithic baseline, so it validates the
//! *stochastic and numerical* parts of the tool chain independently: failure times
//! are sampled per basic event with the memoryless-resampling trick for dormancy
//! changes (a warm spare's remaining lifetime is re-drawn at its active rate the
//! moment it is activated, which is exact for exponential distributions).

use crate::baseline::Explorer;
use crate::rng::SplitMix64;
use crate::{Error, Result};
use dft::Dft;

/// Options for the Monte-Carlo estimator.
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Number of independent system lifetimes to simulate.
    pub samples: usize,
    /// Seed of the pseudo-random number generator (fixed seed ⇒ reproducible
    /// estimates).
    pub seed: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            samples: 100_000,
            seed: 0x5eed_d1f7,
        }
    }
}

/// A Monte-Carlo estimate with its statistical error.
#[derive(Debug, Clone, Copy)]
pub struct SimulationEstimate {
    /// Estimated probability.
    pub probability: f64,
    /// Standard error of the estimate (binomial).
    pub std_error: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl SimulationEstimate {
    /// Half-width of the 95 % confidence interval.
    pub fn confidence_95(&self) -> f64 {
        1.96 * self.std_error
    }
}

fn sample_exponential(rng: &mut SplitMix64, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.open01();
    -u.ln() / rate
}

/// Estimates the unreliability at `mission_time` by simulating independent system
/// lifetimes.
///
/// # Errors
///
/// Returns [`Error::Unsupported`] for DFT features the event-driven propagation
/// does not cover (the same set as the monolithic baseline: no repair, no
/// inhibition gates, FDEP dependents must be basic events) or when `samples` is
/// zero.
///
/// # Examples
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::simulate::{simulate_unreliability, SimulationOptions};
/// # fn main() -> Result<(), dft_core::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let top = b.or_gate("Top", &[x])?;
/// let dft = b.build(top)?;
/// let options = SimulationOptions { samples: 20_000, ..SimulationOptions::default() };
/// let estimate = simulate_unreliability(&dft, 1.0, &options)?;
/// let exact = 1.0 - (-1.0f64).exp();
/// assert!((estimate.probability - exact).abs() < 4.0 * estimate.std_error + 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn simulate_unreliability(
    dft: &Dft,
    mission_time: f64,
    options: &SimulationOptions,
) -> Result<SimulationEstimate> {
    if options.samples == 0 {
        return Err(Error::Unsupported {
            message: "the Monte-Carlo estimator needs at least one sample".to_owned(),
        });
    }
    if !(mission_time.is_finite() && mission_time >= 0.0) {
        return Err(Error::Unsupported {
            message: format!("invalid mission time {mission_time}"),
        });
    }
    let explorer = Explorer::new(dft)?;
    let mut rng = SplitMix64::new(options.seed);
    let mut failures = 0usize;

    for _ in 0..options.samples {
        if simulate_one(dft, &explorer, mission_time, &mut rng) {
            failures += 1;
        }
    }

    let n = options.samples as f64;
    let p = failures as f64 / n;
    let std_error = (p * (1.0 - p) / n).sqrt();
    Ok(SimulationEstimate {
        probability: p,
        std_error,
        samples: options.samples,
    })
}

/// Simulates one system lifetime; returns `true` if the top event occurs within
/// the mission time.
fn simulate_one(
    dft: &Dft,
    explorer: &Explorer<'_>,
    mission_time: f64,
    rng: &mut SplitMix64,
) -> bool {
    let bes = explorer.basic_events().to_vec();
    let mut state = explorer.initial_state();
    let mut now = 0.0f64;

    // Scheduled failure times per basic event at their *current* rate; re-sampled
    // whenever the rate changes (valid thanks to memorylessness).
    let mut rates: Vec<f64> = bes.iter().map(|&be| explorer.be_rate(&state, be)).collect();
    let mut next_failure: Vec<f64> = rates.iter().map(|&r| sample_exponential(rng, r)).collect();

    loop {
        if explorer.element_failed(&state, dft.top()) {
            return true;
        }
        // Earliest pending failure among operational basic events.
        let mut winner: Option<(usize, f64)> = None;
        for (i, &_be) in bes.iter().enumerate() {
            if state.failed[i] {
                continue;
            }
            let at = now + next_failure[i];
            if at.is_finite() && winner.map(|(_, best)| at < best).unwrap_or(true) {
                winner = Some((i, at));
            }
        }
        let Some((index, at)) = winner else {
            return false;
        };
        if at > mission_time {
            return false;
        }
        now = at;
        state = explorer.apply_failure(&state, bes[index]);
        if explorer.element_failed(&state, dft.top()) {
            return true;
        }
        // Rates may have changed (spares were activated by the switch we just
        // performed).  Re-sample every operational clock at its current rate,
        // relative to the new `now`: by memorylessness of the exponential
        // distribution this is equivalent to carrying residual lifetimes, at the
        // cost of a few extra random draws.
        for (i, &be) in bes.iter().enumerate() {
            if !state.failed[i] {
                rates[i] = explorer.be_rate(&state, be);
                next_failure[i] = sample_exponential(rng, rates[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisOptions;
    use crate::casestudies::{cas, CAS_PAPER_UNRELIABILITY};
    use crate::engine::Analyzer;
    use dft::{DftBuilder, Dormancy};

    fn options(samples: usize, seed: u64) -> SimulationOptions {
        SimulationOptions { samples, seed }
    }

    #[test]
    fn single_component_matches_the_exponential_cdf() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("sim_X", 0.8, Dormancy::Hot).unwrap();
        let top = b.or_gate("sim_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let estimate = simulate_unreliability(&dft, 1.0, &options(40_000, 7)).unwrap();
        let exact = 1.0 - (-0.8f64).exp();
        assert!(
            (estimate.probability - exact).abs() < 4.0 * estimate.std_error + 1e-3,
            "{} vs {exact}",
            estimate.probability
        );
        assert!(estimate.std_error > 0.0);
        assert!(estimate.confidence_95() > estimate.std_error);
    }

    #[test]
    fn cold_spare_matches_the_analytic_erlang() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("sim_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("sim_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("sim_Spare", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let estimate = simulate_unreliability(&dft, 1.0, &options(40_000, 11)).unwrap();
        let exact = 1.0 - 2.0 * (-1.0f64).exp();
        assert!(
            (estimate.probability - exact).abs() < 4.0 * estimate.std_error + 1e-3,
            "{} vs {exact}",
            estimate.probability
        );
    }

    #[test]
    fn cas_simulation_agrees_with_the_analytical_pipelines() {
        let dft = cas();
        let estimate = simulate_unreliability(&dft, 1.0, &options(30_000, 2024)).unwrap();
        assert!(
            (estimate.probability - CAS_PAPER_UNRELIABILITY).abs()
                < 4.0 * estimate.std_error + 2e-3,
            "simulated {} vs paper {CAS_PAPER_UNRELIABILITY}",
            estimate.probability
        );
        let analytical = Analyzer::new(&dft, AnalysisOptions::default())
            .unwrap()
            .unreliability(1.0)
            .unwrap();
        assert!(
            (estimate.probability - analytical.value()).abs() < 4.0 * estimate.std_error + 2e-3
        );
    }

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("sim_R1", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("sim_R2", 2.0, Dormancy::Hot).unwrap();
        let top = b.and_gate("sim_RTop", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let a = simulate_unreliability(&dft, 1.0, &options(5_000, 99)).unwrap();
        let b2 = simulate_unreliability(&dft, 1.0, &options(5_000, 99)).unwrap();
        assert_eq!(a.probability, b2.probability);
        let c = simulate_unreliability(&dft, 1.0, &options(5_000, 100)).unwrap();
        assert!((a.probability - c.probability).abs() < 0.05);
    }

    #[test]
    fn zero_mission_time_never_fails() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("sim_Z", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("sim_ZTop", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let estimate = simulate_unreliability(&dft, 0.0, &options(1_000, 1)).unwrap();
        assert_eq!(estimate.probability, 0.0);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("sim_E", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("sim_ETop", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        assert!(simulate_unreliability(&dft, 1.0, &options(0, 1)).is_err());
        assert!(simulate_unreliability(&dft, -1.0, &options(10, 1)).is_err());
    }
}
