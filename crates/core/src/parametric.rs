//! Parameter bookkeeping for parametric (symbolic-rate) models.
//!
//! [`convert_parametric`](crate::convert::convert_parametric) gives every basic
//! event one *parameter slot* per independent rate — a failure-rate slot, plus
//! a repair-rate slot for repairable events — and threads
//! [`RateForm`](ioimc::RateForm)s over those slots through the whole
//! composition/aggregation pipeline.  A [`ParamTable`] records what each slot
//! means and its *base* value (the rate written in the tree); a [`Valuation`]
//! assigns one concrete value per slot and is what turns the aggregated
//! parametric model back into numbers at query time (see
//! [`ParametricAnalyzer::instantiate`](crate::engine::ParametricAnalyzer::instantiate)).

use crate::{Error, Result};
use std::fmt;

/// What a parameter slot controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// The active failure rate λ of a basic event (its dormant rate is the
    /// structural multiple α·λ of the same slot, so one slot drives both).
    Failure,
    /// The repair rate µ of a repairable basic event.
    Repair,
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamKind::Failure => write!(f, "failure"),
            ParamKind::Repair => write!(f, "repair"),
        }
    }
}

/// One parameter slot of a parametric model.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSlot {
    /// Name of the basic event the slot belongs to.
    pub element: String,
    /// Which rate of that event the slot controls.
    pub kind: ParamKind,
    /// The rate value written in the tree the model was converted from.
    pub base: f64,
}

/// The parameter slots of a parametric model, in slot order.
///
/// The table is produced by
/// [`convert_parametric`](crate::convert::convert_parametric) and is the only
/// way to build meaningful [`Valuation`]s: slot indices are dense and assigned
/// in element order, so a valuation is just one `f64` per slot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamTable {
    slots: Vec<ParamSlot>,
}

impl ParamTable {
    /// Registers a new slot and returns its index.
    pub(crate) fn push(&mut self, element: &str, kind: ParamKind, base: f64) -> u32 {
        self.slots.push(ParamSlot {
            element: element.to_owned(),
            kind,
            base,
        });
        (self.slots.len() - 1) as u32
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` for a model without parameters (no basic events — never
    /// the case for a valid DFT).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All slots, in slot order.
    pub fn slots(&self) -> &[ParamSlot] {
        &self.slots
    }

    /// Finds the slot controlling the given rate of the named basic event.
    pub fn slot_of(&self, element: &str, kind: ParamKind) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.kind == kind && s.element == element)
    }

    /// The valuation assigning every slot its base value: instantiating with it
    /// reproduces the original tree's rates exactly.
    pub fn base_valuation(&self) -> Valuation {
        Valuation::new(self.slots.iter().map(|s| s.base).collect())
    }

    /// The base valuation with every *failure* rate multiplied by
    /// `failure_scale` (repair rates keep their base value) — the classic
    /// sensitivity-sweep axis, matching a tree whose failure rates were all
    /// pre-scaled by the same factor.
    pub fn scaled_valuation(&self, failure_scale: f64) -> Valuation {
        Valuation::new(
            self.slots
                .iter()
                .map(|s| match s.kind {
                    ParamKind::Failure => s.base * failure_scale,
                    ParamKind::Repair => s.base,
                })
                .collect(),
        )
    }
}

/// A concrete rate assignment: one value per parameter slot of a [`ParamTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct Valuation {
    values: Vec<f64>,
}

impl Valuation {
    /// Wraps per-slot values (in slot order) into a valuation.
    pub fn new(values: Vec<f64>) -> Valuation {
        Valuation { values }
    }

    /// The per-slot values, in slot order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of slots this valuation covers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` for a valuation without slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Overwrites the value of one slot (e.g. looked up via
    /// [`ParamTable::slot_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set(&mut self, slot: usize, value: f64) -> &mut Valuation {
        self.values[slot] = value;
        self
    }

    /// Checks the valuation against a parameter table: the slot count must
    /// match and every value must be finite and strictly positive (a rate some
    /// transition carries with coefficient > 0 must stay a valid rate).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValuation`] describing the first violation.
    pub fn check_against(&self, table: &ParamTable) -> Result<()> {
        if self.values.len() != table.len() {
            return Err(Error::InvalidValuation {
                message: format!(
                    "valuation has {} values but the model has {} parameter slots",
                    self.values.len(),
                    table.len()
                ),
            });
        }
        for (i, &v) in self.values.iter().enumerate() {
            if !(v.is_finite() && v > 0.0) {
                let slot = &table.slots()[i];
                return Err(Error::InvalidValuation {
                    message: format!(
                        "slot {i} ({} rate of '{}') has invalid value {v}",
                        slot.kind, slot.element
                    ),
                });
            }
        }
        Ok(())
    }

    /// A deterministic FNV-1a fingerprint of the value vector (bit patterns,
    /// `-0.0` folded onto `0.0`), stable across processes — together with
    /// [`Dft::structural_fingerprint`](dft::Dft::structural_fingerprint) it
    /// keys instantiated sessions in the
    /// [`AnalysisService`](crate::service::AnalysisService) cache.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        eat(self.values.len() as u64);
        for &v in &self.values {
            eat(if v == 0.0 { 0 } else { v.to_bits() });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ParamTable {
        let mut t = ParamTable::default();
        t.push("X", ParamKind::Failure, 0.5);
        t.push("X", ParamKind::Repair, 4.0);
        t.push("Y", ParamKind::Failure, 1.5);
        t
    }

    #[test]
    fn slots_round_trip() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.slot_of("X", ParamKind::Repair), Some(1));
        assert_eq!(t.slot_of("Y", ParamKind::Failure), Some(2));
        assert_eq!(t.slot_of("Y", ParamKind::Repair), None);
        assert_eq!(t.slots()[0].base, 0.5);
    }

    #[test]
    fn base_and_scaled_valuations() {
        let t = table();
        let base = t.base_valuation();
        assert_eq!(base.values(), &[0.5, 4.0, 1.5]);
        let scaled = t.scaled_valuation(2.0);
        // Failure slots scale, the repair slot does not.
        assert_eq!(scaled.values(), &[1.0, 4.0, 3.0]);
        assert!(base.check_against(&t).is_ok());
        assert!(scaled.check_against(&t).is_ok());
    }

    #[test]
    fn invalid_valuations_are_rejected() {
        let t = table();
        let short = Valuation::new(vec![1.0]);
        assert!(short.check_against(&t).is_err());
        let mut bad = t.base_valuation();
        bad.set(1, 0.0);
        assert!(bad.check_against(&t).is_err());
        bad.set(1, f64::NAN);
        assert!(bad.check_against(&t).is_err());
    }

    #[test]
    fn fingerprints_track_values() {
        let t = table();
        let a = t.base_valuation();
        let b = t.base_valuation();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = t.scaled_valuation(1.1);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Stable constant: guards against accidental hash changes that would
        // silently split a persistent cache.
        assert_eq!(
            Valuation::new(vec![1.0]).fingerprint(),
            Valuation::new(vec![1.0]).fingerprint()
        );
    }
}
