//! The paper's case studies, ready to analyse.
//!
//! * [`cas`] — the cardiac assist system of Section 5.1 (Figure 7),
//! * [`cps`] — the cascaded PAND system of Section 5.2 (Figure 8), in a
//!   parameterised form so the benchmark harness can also scale it.
//!
//! The reported reference results are: CAS unreliability 0.6579 at mission time 1;
//! CPS unreliability 0.00135 at mission time 1, with the compositional approach
//! peaking at 156 states / 490 transitions versus 4113 states / 24608 transitions
//! for the monolithic chain.
//!
//! [`cas_analyzer`] and [`cps_analyzer`] return ready-made [`Analyzer`] sessions
//! over the two case studies, so sweeps and repeated measures pay for aggregation
//! only once.

use crate::engine::Analyzer;
use crate::{AnalysisOptions, Result};
use dft::{Dft, DftBuilder, Dormancy, ElementId};

/// Builds the cardiac assist system DFT (Figure 7 of the paper).
///
/// The system consists of three units, any of whose failure fails the system:
///
/// * **CPU unit** — a primary CPU `P` with a warm spare `B` (dormancy 0.5); both
///   are functionally dependent on the cross switch `CS` and the system
///   supervision `SS` (modelled as an OR trigger).
/// * **Motor unit** — a primary motor `MA` with a cold spare `MB`; the switching
///   component `MS` matters only if it fails *before* the primary motor, so the
///   unit fails when either the motor spare gate fails or the PAND over `MS` and
///   `MA` fires (MS failed first, leaving the spare motor unreachable).
/// * **Pump unit** — two primary pumps `PA`, `PB`, each backed by the *shared* cold
///   spare pump `PS`; the unit fails when all pumps are gone.
///
/// # Panics
///
/// Never panics for the fixed parameters used here (the builder calls are
/// infallible for this structure).
pub fn cas() -> Dft {
    cas_scaled(1.0)
}

/// A rate-scaled variant of the cardiac assist system: the structure of
/// [`cas`], with every failure rate multiplied by `scale`.
///
/// Portfolio workloads (fleet studies, parameter sweeps, the throughput
/// benchmark) analyze many such variants; `scale = 1.0` is exactly the paper's
/// CAS.  Different scales produce different [`Dft::fingerprint`]s, identical
/// scales share one — which is what makes the variants a good cache workout.
///
/// # Panics
///
/// Panics if `scale` is not strictly positive (a basic event needs a positive
/// failure rate).
pub fn cas_scaled(scale: f64) -> Dft {
    assert!(
        scale > 0.0 && scale.is_finite(),
        "rate scale must be positive and finite"
    );
    let mut b = DftBuilder::new();

    // CPU unit.
    let cs = b
        .basic_event("CS", 0.2 * scale, Dormancy::Hot)
        .expect("valid BE");
    let ss = b
        .basic_event("SS", 0.2 * scale, Dormancy::Hot)
        .expect("valid BE");
    let p = b
        .basic_event("P", 0.5 * scale, Dormancy::Hot)
        .expect("valid BE");
    let cpu_spare = b
        .basic_event("B", 0.5 * scale, Dormancy::Warm(0.5))
        .expect("valid BE");
    let trigger = b.or_gate("Trigger", &[cs, ss]).expect("valid gate");
    let _cpu_fdep = b
        .fdep_gate("CPU_FDEP", trigger, &[p, cpu_spare])
        .expect("valid gate");
    let cpu_unit = b
        .spare_gate("CPU_unit", &[p, cpu_spare])
        .expect("valid gate");

    // Motor unit.
    let ms = b
        .basic_event("MS", 0.01 * scale, Dormancy::Hot)
        .expect("valid BE");
    let ma = b
        .basic_event("MA", 1.0 * scale, Dormancy::Hot)
        .expect("valid BE");
    let mb = b
        .basic_event("MB", 1.0 * scale, Dormancy::Cold)
        .expect("valid BE");
    let motors = b.spare_gate("Motors", &[ma, mb]).expect("valid gate");
    let switch = b.pand_gate("MP", &[ms, ma]).expect("valid gate");
    let motor_unit = b
        .or_gate("Motor_unit", &[switch, motors])
        .expect("valid gate");

    // Pump unit.
    let pa = b
        .basic_event("PA", 1.0 * scale, Dormancy::Hot)
        .expect("valid BE");
    let pb = b
        .basic_event("PB", 1.0 * scale, Dormancy::Hot)
        .expect("valid BE");
    let ps = b
        .basic_event("PS", 1.0 * scale, Dormancy::Cold)
        .expect("valid BE");
    let pump_a = b.spare_gate("Pump_A", &[pa, ps]).expect("valid gate");
    let pump_b = b.spare_gate("Pump_B", &[pb, ps]).expect("valid gate");
    let pump_unit = b
        .and_gate("Pump_unit", &[pump_a, pump_b])
        .expect("valid gate");

    let system = b
        .or_gate("System", &[cpu_unit, motor_unit, pump_unit])
        .expect("valid gate");
    b.build(system).expect("the CAS is a wellformed DFT")
}

/// The CAS unreliability at mission time 1 reported by the paper (Section 5.1).
pub const CAS_PAPER_UNRELIABILITY: f64 = 0.6579;

/// A standard 10-point mission-time grid used by sweep examples, benchmarks and
/// tests: 0.25, 0.5, …, 2.5.
pub const DEFAULT_MISSION_TIMES: [f64; 10] =
    [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5];

/// Builds an [`Analyzer`] session over the cardiac assist system: aggregation
/// runs once here, every subsequent query is answered from the cache.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study with valid
/// options).
pub fn cas_analyzer(options: AnalysisOptions) -> Result<Analyzer> {
    Analyzer::new(&cas(), options)
}

/// Builds an [`Analyzer`] session over the cascaded PAND system.
///
/// # Errors
///
/// Propagates analysis errors (none occur for the fixed case study with valid
/// options).
pub fn cps_analyzer(options: AnalysisOptions) -> Result<Analyzer> {
    Analyzer::new(&cps(), options)
}

/// Number of states the paper reports for each aggregated CAS module I/O-IMC.
pub const CAS_PAPER_MODULE_STATES: usize = 6;

/// The CPU unit of the CAS as a stand-alone DFT (primary CPU with a warm spare,
/// both functionally dependent on the cross switch / system supervision trigger).
///
/// The paper analyses each unit as an independent module; these per-unit builders
/// make that experiment reproducible in isolation.
///
/// # Panics
///
/// Never panics for the fixed structure built here.
pub fn cas_cpu_unit() -> Dft {
    let mut b = DftBuilder::new();
    let cs = b.basic_event("CS", 0.2, Dormancy::Hot).expect("valid BE");
    let ss = b.basic_event("SS", 0.2, Dormancy::Hot).expect("valid BE");
    let p = b.basic_event("P", 0.5, Dormancy::Hot).expect("valid BE");
    let spare = b
        .basic_event("B", 0.5, Dormancy::Warm(0.5))
        .expect("valid BE");
    let trigger = b.or_gate("Trigger", &[cs, ss]).expect("valid gate");
    let _fdep = b
        .fdep_gate("CPU_FDEP", trigger, &[p, spare])
        .expect("valid gate");
    let unit = b.spare_gate("CPU_unit", &[p, spare]).expect("valid gate");
    b.build(unit).expect("wellformed module")
}

/// The motor unit of the CAS as a stand-alone DFT.
///
/// # Panics
///
/// Never panics for the fixed structure built here.
pub fn cas_motor_unit() -> Dft {
    let mut b = DftBuilder::new();
    let ms = b.basic_event("MS", 0.01, Dormancy::Hot).expect("valid BE");
    let ma = b.basic_event("MA", 1.0, Dormancy::Hot).expect("valid BE");
    let mb = b.basic_event("MB", 1.0, Dormancy::Cold).expect("valid BE");
    let motors = b.spare_gate("Motors", &[ma, mb]).expect("valid gate");
    let switch = b.pand_gate("MP", &[ms, ma]).expect("valid gate");
    let unit = b
        .or_gate("Motor_unit", &[switch, motors])
        .expect("valid gate");
    b.build(unit).expect("wellformed module")
}

/// The pump unit of the CAS as a stand-alone DFT (two primary pumps sharing one
/// cold spare pump).
///
/// # Panics
///
/// Never panics for the fixed structure built here.
pub fn cas_pump_unit() -> Dft {
    let mut b = DftBuilder::new();
    let pa = b.basic_event("PA", 1.0, Dormancy::Hot).expect("valid BE");
    let pb = b.basic_event("PB", 1.0, Dormancy::Hot).expect("valid BE");
    let ps = b.basic_event("PS", 1.0, Dormancy::Cold).expect("valid BE");
    let pump_a = b.spare_gate("Pump_A", &[pa, ps]).expect("valid gate");
    let pump_b = b.spare_gate("Pump_B", &[pb, ps]).expect("valid gate");
    let unit = b
        .and_gate("Pump_unit", &[pump_a, pump_b])
        .expect("valid gate");
    b.build(unit).expect("wellformed module")
}

/// Builds the cascaded PAND system (Figure 8 of the paper): a PAND whose inputs are
/// an AND module and a second PAND over two further AND modules; every AND module
/// has four identical basic events with failure rate 1.
///
/// # Panics
///
/// Never panics for the fixed structure built here.
pub fn cps() -> Dft {
    cascaded_pand(4, 1.0)
}

/// The CPS unreliability at mission time 1 reported by the paper (Section 5.2).
pub const CPS_PAPER_UNRELIABILITY: f64 = 0.00135;

/// Peak intermediate model size reported by the paper for the compositional
/// analysis of the CPS: 156 states and 490 transitions.
pub const CPS_PAPER_PEAK: (usize, usize) = (156, 490);

/// Size of the monolithic chain reported by the paper for the CPS: 4113 states and
/// 24608 transitions.
pub const CPS_PAPER_MONOLITHIC: (usize, usize) = (4113, 24608);

/// Parameterised cascaded PAND system: each of the three AND modules has
/// `events_per_module` identical basic events with failure rate `rate`.
///
/// `cascaded_pand(4, 1.0)` is exactly the paper's CPS; other widths are used by the
/// scaling benchmark (experiment E9).
///
/// # Panics
///
/// Panics if `events_per_module` is 0 (an AND gate needs at least one input).
pub fn cascaded_pand(events_per_module: usize, rate: f64) -> Dft {
    assert!(
        events_per_module > 0,
        "each module needs at least one basic event"
    );
    let mut b = DftBuilder::new();
    let module = |b: &mut DftBuilder, name: &str| -> ElementId {
        let events: Vec<ElementId> = (0..events_per_module)
            .map(|i| {
                b.basic_event(&format!("{name}_{i}"), rate, Dormancy::Hot)
                    .expect("valid BE")
            })
            .collect();
        b.and_gate(name, &events).expect("valid gate")
    };
    let module_a = module(&mut b, "A");
    let module_c = module(&mut b, "C");
    let module_d = module(&mut b, "D");
    let inner = b.pand_gate("B", &[module_c, module_d]).expect("valid gate");
    let system = b
        .pand_gate("System", &[module_a, inner])
        .expect("valid gate");
    b.build(system).expect("the CPS is a wellformed DFT")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::GateKind;

    #[test]
    fn cas_structure_matches_the_paper() {
        let dft = cas();
        assert_eq!(dft.num_basic_events(), 10);
        assert_eq!(dft.spare_gates().len(), 4);
        assert_eq!(dft.fdep_gates().len(), 1);
        assert_eq!(dft.gates_of_kind(GateKind::Pand).len(), 1);
        assert_eq!(dft.name(dft.top()), "System");
        assert!(dft.is_dynamic());
        // The shared spare pump is an input of both pump spare gates.
        let ps = dft.by_name("PS").unwrap();
        assert_eq!(dft.parents(ps).len(), 2);
    }

    #[test]
    fn cps_structure_matches_the_paper() {
        let dft = cps();
        assert_eq!(dft.num_basic_events(), 12);
        assert_eq!(dft.gates_of_kind(GateKind::And).len(), 3);
        assert_eq!(dft.gates_of_kind(GateKind::Pand).len(), 2);
        assert_eq!(dft.num_elements(), 17);
    }

    #[test]
    fn case_study_analyzers_reproduce_the_paper() {
        let cas = cas_analyzer(AnalysisOptions::default()).unwrap();
        let r = cas.unreliability(1.0).unwrap();
        assert!(
            (r.value() - CAS_PAPER_UNRELIABILITY).abs() < 1e-3,
            "{}",
            r.value()
        );
        assert_eq!(cas.aggregation_runs(), 1);
        let cps = cps_analyzer(AnalysisOptions::default()).unwrap();
        let curve = cps.unreliability_curve(&DEFAULT_MISSION_TIMES).unwrap();
        assert_eq!(curve.len(), DEFAULT_MISSION_TIMES.len());
        let at_one = curve.points()[3];
        assert_eq!(at_one.time(), Some(1.0));
        assert!(
            (at_one.value() - CPS_PAPER_UNRELIABILITY).abs() < 1e-4,
            "{}",
            at_one.value()
        );
        assert_eq!(cps.aggregation_runs(), 1);
    }

    #[test]
    fn cas_variants_share_structure_but_not_fingerprints() {
        assert_eq!(cas().fingerprint(), cas_scaled(1.0).fingerprint());
        let variant = cas_scaled(1.1);
        assert_eq!(variant.num_elements(), cas().num_elements());
        assert_ne!(variant.fingerprint(), cas().fingerprint());
    }

    #[test]
    fn cascaded_pand_scales() {
        let small = cascaded_pand(2, 1.0);
        assert_eq!(small.num_basic_events(), 6);
        let large = cascaded_pand(5, 0.5);
        assert_eq!(large.num_basic_events(), 15);
    }
}
