//! The session-style analysis engine: build the model once, query it many times.
//!
//! The paper's pipeline — convert the DFT to an I/O-IMC community, then
//! compose/hide/minimise it down to one small model — is by far the most expensive
//! part of an analysis, yet it does not depend on the measure being asked.
//! [`Analyzer::new`] therefore runs validation, conversion and compositional
//! aggregation (or monolithic CTMC generation) *exactly once*, caches the closed
//! final model together with its [`AggregationStats`]/[`ModelStats`], and then
//! serves any number of typed [`Measure`] queries against
//! the cache:
//!
//! ```text
//! Analyzer::new:  DFT ──convert──▶ community (+ monitor) ──aggregate──▶ model
//! query(…):       model ──uniformisation──▶ unreliability (point or curve)
//!                 model ──steady state───▶ unavailability
//!                 model ──first passage──▶ MTTF
//! ```
//!
//! A mission-time sweep through [`Measure::UnreliabilityCurve`] additionally
//! shares the uniformisation pass between all time points, so a 100-point curve
//! costs one aggregation and roughly one analysis, where the legacy one-shot
//! entry points (see [`crate::analysis`]) would have paid for 100 of each.
//!
//! # Example
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::engine::Analyzer;
//! use dft_core::query::Measure;
//! use dft_core::AnalysisOptions;
//!
//! # fn main() -> Result<(), dft_core::Error> {
//! let mut b = DftBuilder::new();
//! let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
//! let top = b.or_gate("Top", &[x])?;
//! let dft = b.build(top)?;
//!
//! // Build the aggregation pipeline once …
//! let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
//! // … then answer many queries against the cached model.
//! let curve = analyzer.query(Measure::curve([0.5, 1.0, 2.0]))?;
//! let mttf = analyzer.query(Measure::Mttf)?;
//! assert_eq!(curve.len(), 3);
//! assert!((mttf.value() - 1.0).abs() < 1e-6);
//! assert_eq!(analyzer.aggregation_runs(), 1);
//! # Ok(())
//! # }
//! ```

use crate::aggregate::{aggregate, AggregationOptions, AggregationStats};
use crate::analysis::{AnalysisOptions, Method};
use crate::baseline;
use crate::convert::{convert, convert_parametric, CommunityOf};
use crate::parametric::{ParamKind, ParamTable, Valuation};
use crate::query::{Measure, MeasurePoint, MeasureResult};
use crate::semantics::monitor;
use crate::store;
use crate::{Error, Result};
use dft::bdd::{Bdd, BddNode};
use dft::modules::{hybrid_plan, ModuleStats};
use dft::{Dft, Element};
use ioimc::bisim::minimize;
use ioimc::closed::{
    can_fire_immediately, check_deterministic, drop_input_transitions, must_fire_immediately,
};
use ioimc::codec::{self, DecodeError, DecodeResult, Reader, Writer};
use ioimc::stats::ModelStats;
use ioimc::{Action, IoImc, IoImcOf, ParametricIoImc, Rate};
use markov::ctmdp::{Ctmdp, CtmdpState};
use markov::kernel::RelaxKernel;
use markov::steady::steady_state_probability;
use markov::Ctmc;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Name of the monitor process composed into the community, and of the atomic
/// proposition it attaches to its "system is down" state.
const MONITOR_NAME: &str = "system monitor";
const DOWN_PROP: &str = "down";

/// The closed, minimised model a compositional session is served from, with
/// its aggregation statistics and scheduler goal sets.
struct ClosedModel<R> {
    closed: IoImcOf<R>,
    stats: AggregationStats,
    top_failure: Action,
    has_repair: bool,
    /// Optimistic goal set: "can fire the top failure immediately".
    can: Vec<bool>,
    /// Pessimistic goal set: "must fire the top failure immediately".
    must: Vec<bool>,
    point_valued: bool,
}

/// The shared tail of both compositional constructors ([`Analyzer::new`] and
/// [`ParametricAnalyzer::new`]): compose the monitor into the community,
/// aggregate with the top failure kept observable, close and minimise the
/// result, and compute the goal sets — identically for numeric and symbolic
/// rates, so the two pipelines cannot drift apart.
fn aggregate_and_close<R: Rate>(community: CommunityOf<R>) -> Result<ClosedModel<R>> {
    let top_failure = community.top_failure;
    let has_repair = community.top_repair.is_some();

    // One community serves every measure: the monitor tracks whether the top
    // event is currently (repairable) or has ever been (non-repairable)
    // failed, and the kept top-failure output drives the reachability goals.
    let mut models = community.models;
    models.push(
        monitor(MONITOR_NAME, top_failure, community.top_repair)?
            .map_rates(|_| unreachable!("the monitor carries no Markovian transitions")),
    );
    let (final_model, stats) = aggregate(
        &models,
        &AggregationOptions {
            keep: vec![top_failure],
            ..AggregationOptions::default()
        },
    )?;
    let closed = minimize(&drop_input_transitions(&final_model));

    let can = can_fire_immediately(&closed, top_failure);
    let must = must_fire_immediately(&closed, top_failure);
    let deterministic = check_deterministic(&closed).is_ok();
    let point_valued = deterministic && can == must;

    Ok(ClosedModel {
        closed,
        stats,
        top_failure,
        has_repair,
        can,
        must,
        point_valued,
    })
}

/// A reusable analysis session for one DFT: the aggregation pipeline runs once in
/// [`Analyzer::new`], every [`query`](Analyzer::query) after that only touches the
/// cached final model.
///
/// `Analyzer` is `Send + Sync` (statically asserted below): queries take `&self`
/// and mutate nothing but an internal [`OnceLock`], so one session behind an
/// `Arc` can serve any number of threads concurrently — this is what the
/// [`AnalysisService`](crate::service::AnalysisService) worker pool and its model
/// cache rely on.
///
/// See the [module documentation](self) for an example.
#[derive(Debug)]
pub struct Analyzer {
    options: AnalysisOptions,
    repairable: bool,
    aggregation: Option<AggregationStats>,
    model_stats: ModelStats,
    backend: Backend,
    /// `true` only when *this* session executed the compositional pipeline:
    /// set by the compositional constructor, cleared for monolithic builds,
    /// parametric instantiations and sessions restored via
    /// [`from_bytes`](Self::from_bytes) (whose `aggregation` stats describe
    /// the run of the original builder, not of this process).
    ran_aggregation: bool,
}

/// The service layer shares `Arc<Analyzer>` across worker threads; losing either
/// auto-trait would silently serialize it again, so assert both at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Analyzer>()
};

/// The cached artifacts the queries are answered from.
#[derive(Debug)]
// One Backend lives per session, so the size gap between the two variants is
// irrelevant — boxing the compositional payload would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// The paper's compositional pipeline: the closed, minimised I/O-IMC with the
    /// top failure signal kept observable and a monitor process composed in.
    Compositional {
        closed: IoImc,
        top_failure: Action,
        has_repair: bool,
        /// `true` when the closed model has no immediate non-determinism *and*
        /// the optimistic and pessimistic goal sets coincide, so unreliability is
        /// a point value rather than an interval.
        point_valued: bool,
        /// CTMDP with the optimistic ("can fire the failure") goal set; its
        /// maximising analysis yields the upper bound.
        upper: Ctmdp,
        /// CTMDP with the pessimistic ("must fire the failure") goal set; its
        /// minimising analysis yields the lower bound.
        lower: Ctmdp,
        /// Embedded CTMC with the monitor's "down" labels, extracted lazily for
        /// the steady-state and first-passage measures (fails for CTMDPs).  A
        /// [`OnceLock`] rather than a `OnceCell` so a shared `Arc<Analyzer>` can
        /// be queried from many threads at once.
        tangible: OnceLock<Result<(Ctmc, Vec<bool>)>>,
    },
    /// The DIFTree-style baseline: one CTMC over the whole tree.
    Monolithic { ctmc: Ctmc, goal: Vec<bool> },
    /// The hybrid static/dynamic decomposition (see
    /// [`dft::modules::hybrid_plan`]): each maximal dynamic core is a nested
    /// compositional session over its sub-DFT, and the static crown above the
    /// cores is a BDD over crown basic events and core exits, evaluated
    /// combinatorially at query time.  Only built for unrepairable trees whose
    /// cores are all deterministic — the conditions under which crown
    /// composition is exact; anything else falls back to
    /// [`Backend::Compositional`] under the same [`Method::Hybrid`] label.
    Hybrid {
        /// The crown function; its variables are original [`dft::ElementId`]
        /// indices described by `leaves`.
        crown: Bdd,
        /// One entry per element of the original tree: what the crown variable
        /// with that index stands for.
        leaves: Vec<HybridLeaf>,
        /// The nested compositional sessions, one per dynamic core.
        cores: Vec<Analyzer>,
        /// The modularization decision record of the plan that produced this
        /// decomposition.
        modules: ModuleStats,
    },
}

/// What one crown-BDD variable (an original element id) stands for in a hybrid
/// session.
#[derive(Debug, Clone, PartialEq)]
enum HybridLeaf {
    /// Not a crown leaf: an internal crown gate, or a core member that is not
    /// an exit.  Never referenced by the crown BDD.
    Unused,
    /// A basic event of the crown; it fails exponentially with this rate.
    Basic {
        /// Active failure rate λ (crown events are never spare inputs, so
        /// dormancy cannot apply).
        rate: f64,
    },
    /// The exit of one dynamic core: its failure probability at `t` is that
    /// core session's unreliability at `t`.
    Core {
        /// Index into [`Backend::Hybrid::cores`].
        index: usize,
    },
}

fn add_model_stats(a: ModelStats, b: ModelStats) -> ModelStats {
    ModelStats {
        states: a.states + b.states,
        interactive_transitions: a.interactive_transitions + b.interactive_transitions,
        markovian_transitions: a.markovian_transitions + b.markovian_transitions,
        inputs: a.inputs + b.inputs,
        outputs: a.outputs + b.outputs,
        internals: a.internals + b.internals,
    }
}

/// Sums the per-core model sizes into the session-level [`ModelStats`]: the
/// hybrid state space is exactly the union of the (independent) core state
/// spaces — the crown adds no states at all.
fn sum_model_stats<'a>(cores: impl Iterator<Item = &'a Analyzer>) -> ModelStats {
    cores.fold(ModelStats::default(), |acc, core| {
        add_model_stats(acc, core.model_stats())
    })
}

/// Merges the per-core aggregation records of a hybrid session: steps are
/// concatenated in core order (the cores run their pipelines sequentially),
/// the peak is the componentwise maximum, and the final model is the disjoint
/// union of the core models.
fn merge_aggregation_stats<'a>(
    stats: impl Iterator<Item = &'a AggregationStats>,
) -> AggregationStats {
    stats.fold(AggregationStats::default(), |mut acc, s| {
        acc.steps.extend(s.steps.iter().cloned());
        acc.peak = acc.peak.max(s.peak);
        acc.final_model = add_model_stats(acc.final_model, s.final_model);
        acc
    })
}

impl Analyzer {
    /// Builds the analysis session: validates and converts the DFT and runs
    /// compositional aggregation (or monolithic CTMC generation) exactly once.
    ///
    /// # Errors
    ///
    /// Propagates conversion, aggregation and numerical errors; returns
    /// [`Error::Unsupported`] for DFT features outside the selected method's
    /// scope.
    pub fn new(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        match options.method {
            Method::Compositional => Analyzer::compositional(dft, options),
            Method::Monolithic => Analyzer::monolithic(dft, options),
            Method::Hybrid => Analyzer::hybrid(dft, options),
        }
    }

    fn compositional(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        let model = aggregate_and_close(convert(dft)?)?;

        let ctmdp_states = ctmdp_states_of(&model.closed);
        let initial = model.closed.initial().index();
        let upper = Ctmdp::new(ctmdp_states.clone(), initial, model.can)?;
        let lower = Ctmdp::new(ctmdp_states, initial, model.must)?;

        Ok(Analyzer {
            options,
            repairable: dft.is_repairable(),
            aggregation: Some(model.stats),
            model_stats: ModelStats::of(&model.closed),
            backend: Backend::Compositional {
                closed: model.closed,
                top_failure: model.top_failure,
                has_repair: model.has_repair,
                point_valued: model.point_valued,
                upper,
                lower,
                tangible: OnceLock::new(),
            },
            ran_aggregation: true,
        })
    }

    fn monolithic(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        let result = baseline::monolithic_ctmc(dft)?;
        let model_stats = ModelStats {
            states: result.ctmc.num_states(),
            markovian_transitions: result.ctmc.num_transitions(),
            ..ModelStats::default()
        };
        Ok(Analyzer {
            options,
            repairable: dft.is_repairable(),
            aggregation: None,
            model_stats,
            backend: Backend::Monolithic {
                ctmc: result.ctmc,
                goal: result.goal,
            },
            ran_aggregation: false,
        })
    }

    /// Builds the hybrid static/dynamic session, or falls back to the full
    /// compositional pipeline (still labelled [`Method::Hybrid`]) whenever the
    /// decomposition would not be exact: the tree is repairable (crown BDDs
    /// assume monotone "failed by `t`" indicators) or some dynamic core turns
    /// out non-deterministic (per-core bounds do not compose through the
    /// crown).
    fn hybrid(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        if dft.is_repairable() {
            return Analyzer::compositional(dft, options);
        }
        let plan = hybrid_plan(dft);
        let core_options = AnalysisOptions {
            method: Method::Compositional,
            ..options
        };
        let mut cores = Vec::with_capacity(plan.cores.len());
        for core in &plan.cores {
            let analyzer = Analyzer::compositional(&core.dft, core_options.clone())?;
            if analyzer.is_nondeterministic() {
                return Analyzer::compositional(dft, options);
            }
            cores.push(analyzer);
        }

        let mut leaves = vec![HybridLeaf::Unused; dft.num_elements()];
        for &e in &plan.crown {
            if let Element::BasicEvent(be) = dft.element(e) {
                leaves[e.index()] = HybridLeaf::Basic { rate: be.rate };
            }
        }
        for (index, core) in plan.cores.iter().enumerate() {
            leaves[core.exit.index()] = HybridLeaf::Core { index };
        }
        let crown = Bdd::build(dft, dft.top(), |e| {
            !matches!(leaves[e.index()], HybridLeaf::Unused)
        })?;

        Ok(Analyzer {
            options,
            repairable: false,
            aggregation: Some(merge_aggregation_stats(
                cores.iter().filter_map(Analyzer::aggregation_stats),
            )),
            model_stats: sum_model_stats(cores.iter()),
            backend: Backend::Hybrid {
                crown,
                leaves,
                cores,
                modules: plan.stats,
            },
            ran_aggregation: true,
        })
    }

    /// Answers one typed query against the cached model.
    ///
    /// Accepts the measure by value or by reference (`Measure` is owned data, so
    /// batch callers keep their measures and pass `&m`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] when the cached method cannot produce the
    /// measure (unavailability needs a repairable model and the compositional
    /// method), [`Error::EmptyCurve`] for a curve query without time points,
    /// [`Error::InvalidMissionTime`] for a NaN/infinite/negative mission time
    /// (validated here at the boundary, not deep inside the numerics), and
    /// propagates numerical errors.  The construction work is *not* repeated on
    /// any path.
    pub fn query(&self, measure: impl Borrow<Measure>) -> Result<MeasureResult> {
        match measure.borrow() {
            Measure::Unreliability(t) => {
                validate_mission_time(*t)?;
                self.unreliability_points(&[*t])
            }
            Measure::UnreliabilityCurve(times) => {
                if times.is_empty() {
                    return Err(Error::EmptyCurve);
                }
                for &t in times {
                    validate_mission_time(t)?;
                }
                self.unreliability_points(times)
            }
            Measure::Unavailability => self.unavailability_point(),
            Measure::Mttf => self.mttf_point(),
        }
    }

    /// Answers a whole batch of measures against the cached model, sharing one
    /// uniformisation / value-iteration pass between *all* time-bounded measures
    /// in the batch.
    ///
    /// The requested mission times of every [`Measure::Unreliability`] and
    /// [`Measure::UnreliabilityCurve`] in `measures` are merged (deduplicated
    /// bit-exactly), evaluated in a single multi-time reachability pass, and
    /// distributed back to their measures.  Because the value-iteration
    /// trajectory does not depend on the set of requested times — only each
    /// time's Poisson mixture weights do — every returned point is bit-identical
    /// to what a separate [`query`](Self::query) for that measure would produce.
    ///
    /// Results are returned in the same order as `measures`.
    ///
    /// # Errors
    ///
    /// If any measure in the batch would fail individually, the whole batch
    /// fails with one of those errors and no partial result is returned.  The
    /// error conditions are exactly those of [`query`](Self::query) — in
    /// particular, NaN/infinite/negative mission times are rejected with
    /// [`Error::InvalidMissionTime`] while merging, before any numerical work
    /// starts — but when several measures are faulty the reported error is not
    /// necessarily the first in batch order: curve shapes and mission times
    /// are validated by the shared merged pass, before any scalar measure is
    /// evaluated.
    pub fn query_all(&self, measures: &[Measure]) -> Result<Vec<MeasureResult>> {
        // Merge the mission times of all time-bounded measures, remembering for
        // each measure which slots of the merged grid it reads back.
        let mut unique_times: Vec<f64> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut plans: Vec<Option<Vec<usize>>> = Vec::with_capacity(measures.len());
        for measure in measures {
            let times: &[f64] = match measure {
                Measure::Unreliability(t) => std::slice::from_ref(t),
                Measure::UnreliabilityCurve(times) => {
                    if times.is_empty() {
                        return Err(Error::EmptyCurve);
                    }
                    times
                }
                Measure::Unavailability | Measure::Mttf => {
                    plans.push(None);
                    continue;
                }
            };
            let slots = times
                .iter()
                .map(|&t| {
                    validate_mission_time(t)?;
                    Ok(*slot_of.entry(t.to_bits()).or_insert_with(|| {
                        unique_times.push(t);
                        unique_times.len() - 1
                    }))
                })
                .collect::<Result<Vec<usize>>>()?;
            plans.push(Some(slots));
        }

        let merged = if unique_times.is_empty() {
            None
        } else {
            Some(self.unreliability_points(&unique_times)?)
        };

        measures
            .iter()
            .zip(plans)
            .map(|(measure, plan)| match (measure, plan) {
                (Measure::Unavailability, None) => self.unavailability_point(),
                (Measure::Mttf, None) => self.mttf_point(),
                (_, Some(slots)) => {
                    let points = merged
                        .as_ref()
                        .expect("time-bounded measures imply a merged pass")
                        .points();
                    Ok(MeasureResult::new(
                        slots.iter().map(|&slot| points[slot]).collect(),
                    ))
                }
                (_, None) => unreachable!("plan shape follows the measure shape"),
            })
            .collect()
    }

    /// Convenience for [`Measure::Unreliability`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn unreliability(&self, mission_time: f64) -> Result<MeasureResult> {
        self.query(Measure::Unreliability(mission_time))
    }

    /// Convenience for [`Measure::UnreliabilityCurve`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn unreliability_curve(&self, mission_times: &[f64]) -> Result<MeasureResult> {
        self.query(Measure::UnreliabilityCurve(mission_times.to_vec()))
    }

    /// Convenience for [`Measure::Unavailability`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn unavailability(&self) -> Result<MeasureResult> {
        self.query(Measure::Unavailability)
    }

    /// Convenience for [`Measure::Mttf`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn mttf(&self) -> Result<MeasureResult> {
        self.query(Measure::Mttf)
    }

    fn unreliability_points(&self, times: &[f64]) -> Result<MeasureResult> {
        let epsilon = self.options.epsilon;
        match &self.backend {
            Backend::Monolithic { ctmc, goal } => {
                let values = ctmc.reachability_multi(goal, times, epsilon)?;
                Ok(MeasureResult::new(
                    times
                        .iter()
                        .zip(values)
                        .map(|(&t, v)| MeasurePoint::exact(Some(t), v))
                        .collect(),
                ))
            }
            Backend::Compositional {
                point_valued,
                upper,
                lower,
                ..
            } => {
                let uppers = upper.reachability_max_multi(times, epsilon)?;
                // When the model is deterministic and the optimistic/pessimistic
                // goal sets coincide, the minimising pass would redo the same
                // value iteration over the same CTMDP — skip it.
                let lowers = if *point_valued {
                    uppers.clone()
                } else {
                    lower.reachability_min_multi(times, epsilon)?
                };
                Ok(MeasureResult::new(
                    times
                        .iter()
                        .zip(lowers.into_iter().zip(uppers))
                        .map(|(&t, (lo, hi))| {
                            MeasurePoint::bounded(Some(t), point_valued.then_some(hi), (lo, hi))
                        })
                        .collect(),
                ))
            }
            Backend::Hybrid {
                crown,
                leaves,
                cores,
                ..
            } => {
                // One multi-time pass per dynamic core, then a combinatorial
                // crown evaluation per time point.  Exact because the cores are
                // pairwise independent and independent of every crown basic
                // event, and all indicators are monotone ("failed by t").
                let core_curves = cores
                    .iter()
                    .map(|core| {
                        Ok(core
                            .unreliability_points(times)?
                            .points()
                            .iter()
                            .map(MeasurePoint::value)
                            .collect::<Vec<f64>>())
                    })
                    .collect::<Result<Vec<Vec<f64>>>>()?;
                let mut probabilities = vec![0.0f64; leaves.len()];
                Ok(MeasureResult::new(
                    times
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| {
                            for (p, leaf) in probabilities.iter_mut().zip(leaves) {
                                *p = match leaf {
                                    HybridLeaf::Unused => 0.0,
                                    HybridLeaf::Basic { rate } => -(-rate * t).exp_m1(),
                                    HybridLeaf::Core { index } => core_curves[*index][i],
                                };
                            }
                            MeasurePoint::exact(Some(t), crown.probability(&probabilities))
                        })
                        .collect(),
                ))
            }
        }
    }

    fn unavailability_point(&self) -> Result<MeasureResult> {
        if !self.repairable {
            return Err(Error::Unsupported {
                message: "unavailability analysis needs at least one repairable basic event"
                    .to_owned(),
            });
        }
        match &self.backend {
            Backend::Monolithic { .. } => Err(Error::Unsupported {
                message: "the monolithic baseline only supports unreliability analysis".to_owned(),
            }),
            // Defensive: a genuine hybrid backend implies an unrepairable tree,
            // so the check above already returned.
            Backend::Hybrid { .. } => Err(Error::Unsupported {
                message: "the hybrid decomposition only exists for unrepairable trees".to_owned(),
            }),
            Backend::Compositional { has_repair, .. } => {
                if !has_repair {
                    return Err(Error::Unsupported {
                        message: "the top event never emits a repair signal".to_owned(),
                    });
                }
                let (ctmc, down) = self.tangible()?;
                let unavailability = steady_state_probability(ctmc, down, self.options.epsilon)?;
                Ok(MeasureResult::new(vec![MeasurePoint::exact(
                    None,
                    unavailability,
                )]))
            }
        }
    }

    fn mttf_point(&self) -> Result<MeasureResult> {
        let mttf = match &self.backend {
            Backend::Monolithic { ctmc, goal } => {
                markov::mttf::mean_time_to_absorption(ctmc, goal, self.options.epsilon)?
            }
            Backend::Compositional { .. } => {
                let (ctmc, down) = self.tangible()?;
                markov::mttf::mean_time_to_absorption(ctmc, down, self.options.epsilon)?
            }
            // MTTF needs a single first-passage model; the hybrid crown only
            // composes time-bounded failure probabilities.
            Backend::Hybrid { .. } => {
                return Err(Error::Unsupported {
                    message: "the hybrid decomposition only supports unreliability analysis; \
                              use the compositional method for MTTF"
                        .to_owned(),
                });
            }
        };
        Ok(MeasureResult::new(vec![MeasurePoint::exact(None, mttf)]))
    }

    /// The embedded CTMC of the closed model with its "down" labels, extracted on
    /// first use and cached for the session.
    fn tangible(&self) -> Result<(&Ctmc, &[bool])> {
        let Backend::Compositional {
            closed, tangible, ..
        } = &self.backend
        else {
            unreachable!("tangible() is only called on the compositional backend");
        };
        match tangible.get_or_init(|| extract_ctmc_with_label(closed, DOWN_PROP)) {
            Ok((ctmc, labels)) => Ok((ctmc, labels)),
            Err(e) => Err(e.clone()),
        }
    }

    /// The options the session was built with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// The analysis method backing this session.
    pub fn method(&self) -> Method {
        self.options.method
    }

    /// Statistics of the compositional aggregation run (absent for the monolithic
    /// method).  The statistics are computed during [`Analyzer::new`] and never
    /// change afterwards, however many queries are answered.
    pub fn aggregation_stats(&self) -> Option<&AggregationStats> {
        self.aggregation.as_ref()
    }

    /// Size of the final analysed model (the closed aggregated I/O-IMC or the
    /// monolithic CTMC).
    pub fn model_stats(&self) -> ModelStats {
        self.model_stats
    }

    /// How many times this session has run compositional aggregation: 1 for a
    /// compositional build, one per dynamic core for a hybrid build, 0 for the
    /// monolithic baseline, for parametric instantiations *and* for sessions
    /// restored from bytes (a restored session carries the original run's
    /// [`aggregation_stats`] but ran no pipeline of its own — that is the
    /// entire point of persisting it) — and never more, regardless of how many
    /// queries were answered.
    ///
    /// [`aggregation_stats`]: Self::aggregation_stats
    pub fn aggregation_runs(&self) -> usize {
        match &self.backend {
            Backend::Hybrid { cores, .. } if self.ran_aggregation => cores.len(),
            _ => usize::from(self.ran_aggregation),
        }
    }

    /// Returns `true` if the final model contained immediate non-determinism, so
    /// unreliability queries report scheduler bounds instead of point values.
    pub fn is_nondeterministic(&self) -> bool {
        match &self.backend {
            Backend::Compositional { point_valued, .. } => !point_valued,
            // A hybrid backend is only ever built from deterministic cores.
            Backend::Monolithic { .. } | Backend::Hybrid { .. } => false,
        }
    }

    /// The closed, minimised final I/O-IMC (compositional method only; a hybrid
    /// session has one closed model *per core* and no single final I/O-IMC).
    pub fn final_model(&self) -> Option<&IoImc> {
        match &self.backend {
            Backend::Compositional { closed, .. } => Some(closed),
            Backend::Monolithic { .. } | Backend::Hybrid { .. } => None,
        }
    }

    /// The observable top-failure action of the cached model (compositional
    /// method only).
    pub fn top_failure(&self) -> Option<Action> {
        match &self.backend {
            Backend::Compositional { top_failure, .. } => Some(*top_failure),
            Backend::Monolithic { .. } | Backend::Hybrid { .. } => None,
        }
    }

    /// The modularization record of the hybrid decomposition: how many static
    /// modules were found, how many elements ended up in the BDD crown and how
    /// many in dynamic cores.  `None` for the other methods *and* for hybrid
    /// sessions that fell back to the compositional pipeline (repairable tree
    /// or a non-deterministic core) — so `Some` here certifies that the
    /// decomposition actually happened.
    pub fn module_stats(&self) -> Option<ModuleStats> {
        match &self.backend {
            Backend::Hybrid { modules, .. } => Some(*modules),
            Backend::Compositional { .. } | Backend::Monolithic { .. } => None,
        }
    }

    /// Serializes the session into the versioned binary container of the
    /// persistent model cache (see [`crate::store`]): the closed model, the
    /// can/must CTMDP pair with their goal vectors, the statistics and the
    /// options, framed with magic, format version and a payload checksum.
    ///
    /// The inverse is [`from_bytes`](Self::from_bytes); a restored session
    /// answers every query bit-identically to this one and reports
    /// [`aggregation_runs`](Self::aggregation_runs)` == 0`.
    pub fn to_bytes(&self) -> Vec<u8> {
        store::seal(
            store::Kind::Session,
            // A free-standing serialization is not bound to a DFT
            // fingerprint; the store writes its own frames with the real one.
            0,
            self.options.epsilon.to_bits(),
            &self.encode_payload(),
        )
    }

    /// Restores a session serialized with [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] when the bytes are truncated, corrupted, from
    /// a different format version, or decode to a model that fails
    /// validation.  Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Analyzer> {
        store::unseal(bytes, store::Kind::Session, None)
            .and_then(Analyzer::decode_payload)
            .map_err(|e| Error::Store {
                message: e.to_string(),
            })
    }

    /// The unframed payload body of [`to_bytes`](Self::to_bytes); the store
    /// frames it with the entry's real fingerprint.
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_body(&mut w);
        w.into_bytes()
    }

    /// Writes the session body onto a shared writer, without framing or
    /// trailing checks: a hybrid payload embeds one body per core back to back
    /// on the same writer, so bodies must compose.
    fn encode_body(&self, w: &mut Writer) {
        store::encode_options(&self.options, w);
        w.bool(self.repairable);
        match &self.aggregation {
            None => w.bool(false),
            Some(stats) => {
                w.bool(true);
                store::encode_aggregation_stats(stats, w);
            }
        }
        store::encode_model_stats(self.model_stats, w);
        match &self.backend {
            Backend::Compositional {
                closed,
                top_failure,
                has_repair,
                point_valued,
                upper,
                lower,
                tangible: _, // derived lazily and deterministically from `closed`
            } => {
                w.u8(0);
                w.str(top_failure.name());
                w.bool(*has_repair);
                w.bool(*point_valued);
                codec::encode_model(closed, w);
                store::encode_ctmdp(upper, w);
                store::encode_ctmdp(lower, w);
            }
            Backend::Monolithic { ctmc, goal } => {
                w.u8(1);
                w.len_prefix(ctmc.num_states());
                w.len_prefix(ctmc.initial());
                let transitions = ctmc.transitions();
                w.len_prefix(transitions.len());
                for (from, to, rate) in transitions {
                    w.u32(from);
                    w.u32(to);
                    w.f64(rate);
                }
                store::encode_bools(goal, w);
            }
            Backend::Hybrid {
                crown,
                leaves,
                cores,
                modules,
            } => {
                w.u8(2);
                store::encode_module_stats(*modules, w);
                w.len_prefix(crown.node_count());
                for node in crown.nodes() {
                    w.u32(node.var);
                    w.u32(node.lo);
                    w.u32(node.hi);
                }
                w.u32(crown.root());
                w.len_prefix(leaves.len());
                for leaf in leaves {
                    match leaf {
                        HybridLeaf::Unused => w.u8(0),
                        HybridLeaf::Basic { rate } => {
                            w.u8(1);
                            w.f64(*rate);
                        }
                        HybridLeaf::Core { index } => {
                            w.u8(2);
                            w.u32(u32::try_from(*index).expect("core count fits in u32"));
                        }
                    }
                }
                w.len_prefix(cores.len());
                for core in cores {
                    core.encode_body(w);
                }
            }
        }
    }

    /// Decodes a payload produced by [`encode_payload`](Self::encode_payload),
    /// re-validating every embedded model.
    pub(crate) fn decode_payload(payload: &[u8]) -> DecodeResult<Analyzer> {
        let mut r = Reader::new(payload);
        let analyzer = Analyzer::decode_body(&mut r)?;
        if !r.is_done() {
            return Err(DecodeError::new("trailing bytes after the session payload"));
        }
        Ok(analyzer)
    }

    /// Reads one session body from a shared reader (the inverse of
    /// [`encode_body`](Self::encode_body)); the caller checks for trailing
    /// bytes once the outermost body is done.
    fn decode_body(r: &mut Reader) -> DecodeResult<Analyzer> {
        let options = store::decode_options(r)?;
        let repairable = r.bool()?;
        let aggregation = if r.bool()? {
            Some(store::decode_aggregation_stats(r)?)
        } else {
            None
        };
        let model_stats = store::decode_model_stats(r)?;
        let backend = match (r.u8()?, options.method) {
            // Tag 0 under `Method::Hybrid` is a hybrid session that fell back
            // to the compositional pipeline (repairable tree or
            // non-deterministic core): same body, different label.
            (0, Method::Compositional | Method::Hybrid) => {
                let top_failure = Action::new(&r.str()?);
                let has_repair = r.bool()?;
                let point_valued = r.bool()?;
                let closed = codec::decode_model::<f64>(r)?;
                let upper = store::decode_ctmdp(r)?;
                let lower = store::decode_ctmdp(r)?;
                if upper.num_states() != closed.num_states()
                    || lower.num_states() != closed.num_states()
                {
                    return Err(DecodeError::new(
                        "CTMDP state counts disagree with the closed model",
                    ));
                }
                Backend::Compositional {
                    closed,
                    top_failure,
                    has_repair,
                    point_valued,
                    upper,
                    lower,
                    tangible: OnceLock::new(),
                }
            }
            (1, Method::Monolithic) => {
                let num_states = r.len_prefix(0)?;
                let initial = r.len_prefix(0)?;
                let n = r.len_prefix(16)?;
                let mut transitions = Vec::with_capacity(n);
                for _ in 0..n {
                    transitions.push((r.u32()?, r.u32()?, r.f64()?));
                }
                let ctmc = Ctmc::from_transitions(num_states, initial, &transitions)
                    .map_err(|e| DecodeError::new(format!("decoded CTMC is invalid: {e}")))?;
                let goal = store::decode_bools(&mut *r)?;
                if goal.len() != num_states {
                    return Err(DecodeError::new("goal vector length mismatch"));
                }
                Backend::Monolithic { ctmc, goal }
            }
            (2, Method::Hybrid) => {
                if repairable {
                    return Err(DecodeError::new(
                        "a hybrid decomposition cannot be repairable",
                    ));
                }
                let modules = store::decode_module_stats(r)?;
                let n = r.len_prefix(12)?;
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(BddNode {
                        var: r.u32()?,
                        lo: r.u32()?,
                        hi: r.u32()?,
                    });
                }
                let root = r.u32()?;
                let crown = Bdd::from_parts(nodes, root)
                    .map_err(|e| DecodeError::new(format!("decoded crown BDD is invalid: {e}")))?;
                let n_leaves = r.len_prefix(1)?;
                let mut leaves = Vec::with_capacity(n_leaves);
                for _ in 0..n_leaves {
                    leaves.push(match r.u8()? {
                        0 => HybridLeaf::Unused,
                        1 => {
                            let rate = r.f64()?;
                            if !rate.is_finite() || rate <= 0.0 {
                                return Err(DecodeError::new(
                                    "crown basic-event rate out of range",
                                ));
                            }
                            HybridLeaf::Basic { rate }
                        }
                        2 => HybridLeaf::Core {
                            index: r.u32()? as usize,
                        },
                        tag => {
                            return Err(DecodeError::new(format!("unknown hybrid leaf tag {tag}")))
                        }
                    });
                }
                let n_cores = r.len_prefix(1)?;
                let mut cores = Vec::with_capacity(n_cores);
                for _ in 0..n_cores {
                    let core = Analyzer::decode_body(r)?;
                    if core.method() != Method::Compositional || core.is_nondeterministic() {
                        return Err(DecodeError::new(
                            "hybrid cores must be deterministic compositional sessions",
                        ));
                    }
                    cores.push(core);
                }
                for leaf in &leaves {
                    if let HybridLeaf::Core { index } = leaf {
                        if *index >= cores.len() {
                            return Err(DecodeError::new("hybrid leaf references a missing core"));
                        }
                    }
                }
                for var in crown.support() {
                    if !matches!(
                        leaves.get(var.index()),
                        Some(HybridLeaf::Basic { .. } | HybridLeaf::Core { .. })
                    ) {
                        return Err(DecodeError::new("crown BDD references an unused leaf"));
                    }
                }
                Backend::Hybrid {
                    crown,
                    leaves,
                    cores,
                    modules,
                }
            }
            (tag, method) => {
                return Err(DecodeError::new(format!(
                    "backend tag {tag} disagrees with method {method:?}"
                )))
            }
        };
        Ok(Analyzer {
            options,
            repairable,
            aggregation,
            model_stats,
            backend,
            ran_aggregation: false,
        })
    }
}

/// A *parametric* analysis session: the symbolic-rate aggregation pipeline runs
/// once in [`ParametricAnalyzer::new`], and [`instantiate`](Self::instantiate)
/// then turns the cached parametric model into a numeric [`Analyzer`] for any
/// rate [`Valuation`] — by evaluating linear [`RateForm`](ioimc::RateForm)s,
/// **without** re-running conversion, composition or bisimulation minimisation.
///
/// This is the engine behind rate-sensitivity sweeps: a K-point sweep costs one
/// aggregation plus K cheap instantiations, where K independent
/// [`Analyzer::new`] calls would pay K full aggregations.  The aggregation lumps
/// states only when their cumulative rate *forms* coincide, which is sound for
/// every positive valuation at once; each instantiated session therefore
/// answers every [`Measure`] within numerical tolerance of (and typically
/// bit-identical to) a direct build on the equivalently re-rated tree.
///
/// # Example
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::engine::ParametricAnalyzer;
/// use dft_core::AnalysisOptions;
///
/// # fn main() -> Result<(), dft_core::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let top = b.or_gate("Top", &[x])?;
/// let dft = b.build(top)?;
///
/// // Aggregate the *structure* once …
/// let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default())?;
/// // … then sweep the failure-rate scale without re-aggregating.
/// let valuations: Vec<_> = (1..=5)
///     .map(|i| parametric.params().scaled_valuation(i as f64))
///     .collect();
/// let sweep = parametric.sweep_unreliability(1.0, &valuations)?;
/// assert_eq!(sweep.len(), 5);
/// assert_eq!(parametric.aggregation_runs(), 1);
/// // Each point matches the closed form 1 - exp(-scale·t).
/// for (i, value) in sweep.values().enumerate() {
///     let exact = 1.0 - (-((i + 1) as f64)).exp();
///     assert!((value - exact).abs() < 1e-6);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParametricAnalyzer {
    options: AnalysisOptions,
    repairable: bool,
    aggregation: AggregationStats,
    /// `true` when this session executed the symbolic aggregation itself;
    /// `false` for sessions restored via [`from_bytes`](Self::from_bytes).
    ran_aggregation: bool,
    model_stats: ModelStats,
    /// What every slot of a [`Valuation`] means.  Always the table
    /// [`convert_parametric`] builds for the tree — one failure (and, where
    /// repairable, repair) slot per basic event in element order — whichever
    /// backend answers the queries.
    params: ParamTable,
    backend: ParametricBackend,
}

/// The parametric counterpart of [`Backend`]: what [`ParametricAnalyzer`]
/// caches between [`instantiate`](ParametricAnalyzer::instantiate) calls.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum ParametricBackend {
    /// The symbolic closed model of the full tree.
    Compositional {
        /// The closed, minimised parametric model (rates are linear forms).
        closed: ParametricIoImc,
        top_failure: Action,
        has_repair: bool,
        /// Optimistic goal set ("can fire the top failure immediately") —
        /// depends only on the interactive structure, so it is shared by every
        /// valuation.
        can: Vec<bool>,
        /// Pessimistic goal set ("must fire the top failure immediately").
        must: Vec<bool>,
        point_valued: bool,
        /// The shared CTMDP structure of the closed model, lowered once on
        /// first sweep: batched sweeps evaluate rate forms straight into
        /// kernel lanes instead of instantiating one `Ctmdp` pair per
        /// valuation.
        sweep_template: OnceLock<SweepTemplate>,
    },
    /// The parametric hybrid decomposition: one nested parametric session per
    /// dynamic core, a shared crown BDD, and leaves that read failure rates
    /// straight out of the session's global [`ParamTable`].
    Hybrid {
        crown: Bdd,
        /// One entry per element of the original tree (same indexing as
        /// [`Backend::Hybrid`]).
        leaves: Vec<ParametricLeaf>,
        cores: Vec<ParametricCore>,
        modules: ModuleStats,
    },
}

/// What one crown-BDD variable stands for in a *parametric* hybrid session.
#[derive(Debug, Clone, PartialEq)]
enum ParametricLeaf {
    /// Never referenced by the crown BDD.
    Unused,
    /// A crown basic event; its failure rate is this slot of the session's
    /// global [`ParamTable`].
    Basic {
        /// Slot index into the global table.
        slot: u32,
    },
    /// The exit of one dynamic core.
    Core {
        /// Index into [`ParametricBackend::Hybrid::cores`].
        index: usize,
    },
}

/// One dynamic core of a parametric hybrid session: the nested parametric
/// session over the core's sub-DFT plus the projection from the global
/// parameter table onto the core's own table.
#[derive(Debug)]
struct ParametricCore {
    analyzer: ParametricAnalyzer,
    /// `slots[i]` is the global slot feeding slot `i` of `analyzer.params()`.
    slots: Vec<u32>,
}

/// The lowering [`ParametricAnalyzer`] caches for batched sweeps: the CTMDP
/// state vector with dummy Markovian rates (the structure), the rate form of
/// every Markovian edge in kernel edge order (state order, row order within a
/// state — exactly the walk of [`ctmdp_states_of`]), and the initial state.
#[derive(Debug)]
struct SweepTemplate {
    states: Vec<CtmdpState>,
    forms: Vec<ioimc::RateForm>,
    initial: usize,
}

/// The cached structure lowering behind
/// [`ParametricAnalyzer::sweep_query`]: runs once per session (per
/// compositional backend) and is shared by every subsequent batched sweep.
fn lower_sweep_template<'a>(
    closed: &ParametricIoImc,
    lock: &'a OnceLock<SweepTemplate>,
) -> &'a SweepTemplate {
    lock.get_or_init(|| {
        let mut forms = Vec::new();
        let states = closed
            .states()
            .map(|s| {
                let immediate: Vec<u32> = closed
                    .interactive_from(s)
                    .iter()
                    .filter(|t| t.label.is_immediate())
                    .map(|t| t.to.index() as u32)
                    .collect();
                if !immediate.is_empty() {
                    CtmdpState::Immediate(immediate)
                } else {
                    CtmdpState::Markovian(
                        closed
                            .markovian_from(s)
                            .iter()
                            .map(|t| {
                                forms.push(t.rate.clone());
                                // The rate is a template placeholder; the
                                // kernel takes real rates per lane.
                                (t.to.index() as u32, 1.0)
                            })
                            .collect(),
                    )
                }
            })
            .collect();
        SweepTemplate {
            states,
            forms,
            initial: closed.initial().index(),
        }
    })
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ParametricAnalyzer>()
};

impl ParametricAnalyzer {
    /// Builds the parametric session: validates and converts the DFT with
    /// symbolic rates and runs compositional aggregation exactly once — per
    /// dynamic core for [`Method::Hybrid`], over the whole tree otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for [`Method::Monolithic`] options (the
    /// monolithic baseline has no parametric form) and propagates conversion
    /// and aggregation errors.
    pub fn new(dft: &Dft, options: AnalysisOptions) -> Result<ParametricAnalyzer> {
        match options.method {
            Method::Compositional => ParametricAnalyzer::compositional(dft, options),
            Method::Monolithic => Err(Error::Unsupported {
                message: "the monolithic baseline has no parametric form".to_owned(),
            }),
            Method::Hybrid => ParametricAnalyzer::hybrid(dft, options),
        }
    }

    fn compositional(dft: &Dft, options: AnalysisOptions) -> Result<ParametricAnalyzer> {
        let (community, params) = convert_parametric(dft)?;
        let model = aggregate_and_close(community)?;

        Ok(ParametricAnalyzer {
            options,
            repairable: dft.is_repairable(),
            aggregation: model.stats,
            ran_aggregation: true,
            model_stats: ModelStats::of(&model.closed),
            params,
            backend: ParametricBackend::Compositional {
                closed: model.closed,
                top_failure: model.top_failure,
                has_repair: model.has_repair,
                can: model.can,
                must: model.must,
                point_valued: model.point_valued,
                sweep_template: OnceLock::new(),
            },
        })
    }

    /// The parametric hybrid build: one nested parametric session per dynamic
    /// core, the crown on a BDD, with the same fallback rule as
    /// [`Analyzer::hybrid`] (repairable tree or non-deterministic core ⇒ full
    /// compositional pipeline under the [`Method::Hybrid`] label).
    fn hybrid(dft: &Dft, options: AnalysisOptions) -> Result<ParametricAnalyzer> {
        if dft.is_repairable() {
            return ParametricAnalyzer::compositional(dft, options);
        }
        // The session-global parameter table: exactly what
        // `convert_parametric` builds for an unrepairable tree — one failure
        // slot per basic event in element order — so valuations, base
        // valuations and slot lookups are identical across backends.
        let mut params = ParamTable::default();
        for id in dft.elements() {
            if let Element::BasicEvent(be) = dft.element(id) {
                params.push(dft.name(id), ParamKind::Failure, be.rate);
            }
        }

        let plan = hybrid_plan(dft);
        let core_options = AnalysisOptions {
            method: Method::Compositional,
            ..options
        };
        let mut cores = Vec::with_capacity(plan.cores.len());
        for core in &plan.cores {
            let analyzer = ParametricAnalyzer::compositional(&core.dft, core_options.clone())?;
            if analyzer.is_nondeterministic() {
                return ParametricAnalyzer::compositional(dft, options);
            }
            // Extraction preserves element names, so every core parameter maps
            // onto a global slot.
            let slots = analyzer
                .params
                .slots()
                .iter()
                .map(|slot| {
                    params
                        .slot_of(&slot.element, slot.kind)
                        .expect("core basic events are basic events of the tree")
                        as u32
                })
                .collect();
            cores.push(ParametricCore { analyzer, slots });
        }

        let mut leaves = vec![ParametricLeaf::Unused; dft.num_elements()];
        for &e in &plan.crown {
            if dft.element(e).as_basic_event().is_some() {
                let slot = params
                    .slot_of(dft.name(e), ParamKind::Failure)
                    .expect("every basic event has a failure slot");
                leaves[e.index()] = ParametricLeaf::Basic { slot: slot as u32 };
            }
        }
        for (index, core) in plan.cores.iter().enumerate() {
            leaves[core.exit.index()] = ParametricLeaf::Core { index };
        }
        let crown = Bdd::build(dft, dft.top(), |e| {
            !matches!(leaves[e.index()], ParametricLeaf::Unused)
        })?;

        Ok(ParametricAnalyzer {
            options,
            repairable: false,
            aggregation: merge_aggregation_stats(cores.iter().map(|c| &c.analyzer.aggregation)),
            ran_aggregation: true,
            model_stats: cores.iter().fold(ModelStats::default(), |acc, c| {
                add_model_stats(acc, c.analyzer.model_stats)
            }),
            params,
            backend: ParametricBackend::Hybrid {
                crown,
                leaves,
                cores,
                modules: plan.stats,
            },
        })
    }

    /// Instantiates the cached parametric model for one rate assignment,
    /// returning a numeric [`Analyzer`] ready to answer queries.
    ///
    /// Only the linear rate forms are evaluated (in deterministic slot order);
    /// no conversion, composition or minimisation is repeated — the returned
    /// session reports [`aggregation_runs`](Analyzer::aggregation_runs) `== 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValuation`] when the valuation does not fit the
    /// model's [`ParamTable`] and propagates CTMDP construction errors.
    pub fn instantiate(&self, valuation: &Valuation) -> Result<Analyzer> {
        valuation.check_against(&self.params)?;
        let values = valuation.values();
        match &self.backend {
            ParametricBackend::Compositional {
                closed,
                top_failure,
                has_repair,
                can,
                must,
                point_valued,
                ..
            } => {
                let closed = closed.map_rates(|form| form.eval(values));
                debug_assert!(closed.validate().is_ok());

                let ctmdp_states = ctmdp_states_of(&closed);
                let initial = closed.initial().index();
                let upper = Ctmdp::new(ctmdp_states.clone(), initial, can.clone())?;
                let lower = Ctmdp::new(ctmdp_states, initial, must.clone())?;

                Ok(Analyzer {
                    options: self.options.clone(),
                    repairable: self.repairable,
                    // Instantiation runs no aggregation; the stats live on `self`.
                    aggregation: None,
                    model_stats: self.model_stats,
                    backend: Backend::Compositional {
                        closed,
                        top_failure: *top_failure,
                        has_repair: *has_repair,
                        point_valued: *point_valued,
                        upper,
                        lower,
                        tangible: OnceLock::new(),
                    },
                    ran_aggregation: false,
                })
            }
            ParametricBackend::Hybrid {
                crown,
                leaves,
                cores,
                modules,
            } => {
                // Instantiate every core through its slot projection; the
                // crown structure is shared (it does not depend on rates).
                let numeric_cores = cores
                    .iter()
                    .map(|core| {
                        let projected = Valuation::new(
                            core.slots.iter().map(|&s| values[s as usize]).collect(),
                        );
                        core.analyzer.instantiate(&projected)
                    })
                    .collect::<Result<Vec<Analyzer>>>()?;
                let numeric_leaves = leaves
                    .iter()
                    .map(|leaf| match leaf {
                        ParametricLeaf::Unused => HybridLeaf::Unused,
                        ParametricLeaf::Basic { slot } => HybridLeaf::Basic {
                            rate: values[*slot as usize],
                        },
                        ParametricLeaf::Core { index } => HybridLeaf::Core { index: *index },
                    })
                    .collect();
                Ok(Analyzer {
                    options: self.options.clone(),
                    repairable: self.repairable,
                    aggregation: None,
                    model_stats: self.model_stats,
                    backend: Backend::Hybrid {
                        crown: crown.clone(),
                        leaves: numeric_leaves,
                        cores: numeric_cores,
                        modules: *modules,
                    },
                    ran_aggregation: false,
                })
            }
        }
    }

    /// Evaluates one measure across a whole sweep of valuations with zero
    /// re-aggregations.
    ///
    /// Time-bounded measures ([`Measure::Unreliability`] and
    /// [`Measure::UnreliabilityCurve`]) run *batched*: every valuation
    /// becomes one lane of a [`RelaxKernel`], so the whole sweep costs one
    /// (or two, for non-deterministic models) traversal of the shared
    /// structure instead of one value iteration per point.  Each lane keeps
    /// its own uniformisation rate, so every result is bit-identical to
    /// [`instantiate`](Self::instantiate)` + `[`Analyzer::query`] on that
    /// valuation alone — and independent of the kernel's worker count.
    /// [`Measure::Unavailability`] and [`Measure::Mttf`] fall back to the
    /// per-point loop.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid valuation or query error (see
    /// [`instantiate`](Self::instantiate) and [`Analyzer::query`]).  A sweep
    /// over zero valuations succeeds without validating the measure, like
    /// the per-point loop it replaces.
    pub fn sweep_query(&self, measure: &Measure, valuations: &[Valuation]) -> Result<RateSweep> {
        if valuations.is_empty() {
            return Ok(RateSweep {
                results: Vec::new(),
                instantiate_time: Duration::ZERO,
                query_time: Duration::ZERO,
            });
        }
        let times: &[f64] = match measure {
            Measure::Unreliability(t) => std::slice::from_ref(t),
            Measure::UnreliabilityCurve(times) => {
                if times.is_empty() {
                    return Err(Error::EmptyCurve);
                }
                times
            }
            Measure::Unavailability | Measure::Mttf => {
                return self.sweep_per_point(measure, valuations)
            }
        };
        self.sweep_batched(times, valuations)
    }

    /// The pre-kernel sweep loop: instantiate + query per valuation.  Still
    /// the path for measures the batched kernel does not cover.
    fn sweep_per_point(&self, measure: &Measure, valuations: &[Valuation]) -> Result<RateSweep> {
        let mut results = Vec::with_capacity(valuations.len());
        let mut instantiate_time = Duration::ZERO;
        let mut query_time = Duration::ZERO;
        for valuation in valuations {
            let started = Instant::now();
            let session = self.instantiate(valuation)?;
            instantiate_time += started.elapsed();
            let started = Instant::now();
            results.push(session.query(measure)?);
            query_time += started.elapsed();
        }
        Ok(RateSweep {
            results,
            instantiate_time,
            query_time,
        })
    }

    /// The batched sweep: K valuations become K lanes of one [`RelaxKernel`]
    /// built from the cached [`SweepTemplate`], and one value-iteration pass
    /// per goal set answers every lane and every time bound at once.
    fn sweep_batched(&self, times: &[f64], valuations: &[Valuation]) -> Result<RateSweep> {
        // Merge duplicate time bounds in first-occurrence order — the exact
        // plan `Analyzer::query_all` builds — so each lane reads the same
        // merged grid a per-point query would.
        let mut unique_times: Vec<f64> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let slots = times
            .iter()
            .map(|&t| {
                validate_mission_time(t)?;
                Ok(*slot_of.entry(t.to_bits()).or_insert_with(|| {
                    unique_times.push(t);
                    unique_times.len() - 1
                }))
            })
            .collect::<Result<Vec<usize>>>()?;

        match &self.backend {
            ParametricBackend::Compositional {
                closed,
                can,
                must,
                point_valued,
                sweep_template,
                ..
            } => {
                let started = Instant::now();
                let template = lower_sweep_template(closed, sweep_template);
                let lanes = valuations.len();
                let mut lane_rates = vec![0.0f64; template.forms.len() * lanes];
                for (k, valuation) in valuations.iter().enumerate() {
                    valuation.check_against(&self.params)?;
                    let values = valuation.values();
                    // Same forms, same eval, same slot order as `map_rates`
                    // inside `instantiate` — lane k's rates carry identical
                    // bits.
                    for (e, form) in template.forms.iter().enumerate() {
                        lane_rates[e * lanes + k] = form.eval(values);
                    }
                }
                let kernel = RelaxKernel::from_template(&template.states, &lane_rates, lanes)?;
                let instantiate_time = started.elapsed();

                let started = Instant::now();
                let epsilon = self.options.epsilon;
                let workers = kernel.auto_workers();
                let uppers = kernel.reachability(
                    template.initial,
                    can,
                    &unique_times,
                    epsilon,
                    true,
                    workers,
                )?;
                let lowers = if *point_valued {
                    uppers.clone()
                } else {
                    kernel.reachability(
                        template.initial,
                        must,
                        &unique_times,
                        epsilon,
                        false,
                        workers,
                    )?
                };
                let results = (0..lanes)
                    .map(|k| {
                        let points: Vec<MeasurePoint> = unique_times
                            .iter()
                            .enumerate()
                            .map(|(slot, &t)| {
                                let hi = uppers[slot * lanes + k];
                                let lo = lowers[slot * lanes + k];
                                MeasurePoint::bounded(Some(t), point_valued.then_some(hi), (lo, hi))
                            })
                            .collect();
                        MeasureResult::new(slots.iter().map(|&slot| points[slot]).collect())
                    })
                    .collect();
                let query_time = started.elapsed();
                Ok(RateSweep {
                    results,
                    instantiate_time,
                    query_time,
                })
            }
            ParametricBackend::Hybrid {
                crown,
                leaves,
                cores,
                ..
            } => {
                let started = Instant::now();
                for valuation in valuations {
                    valuation.check_against(&self.params)?;
                }
                let mut instantiate_time = started.elapsed();
                let mut query_time = Duration::ZERO;

                // One nested batched sweep per core over the merged grid.
                // Each core sweep is bit-identical to instantiating that core
                // per valuation, so the whole hybrid sweep matches the
                // per-point hybrid path bit for bit.
                let measure = Measure::UnreliabilityCurve(unique_times.clone());
                // core_curves[core][lane][time slot]
                let mut core_curves: Vec<Vec<Vec<f64>>> = Vec::with_capacity(cores.len());
                for core in cores {
                    let projected: Vec<Valuation> = valuations
                        .iter()
                        .map(|v| {
                            let values = v.values();
                            Valuation::new(core.slots.iter().map(|&s| values[s as usize]).collect())
                        })
                        .collect();
                    let sweep = core.analyzer.sweep_query(&measure, &projected)?;
                    instantiate_time += sweep.instantiate_time();
                    query_time += sweep.query_time();
                    core_curves.push(
                        sweep
                            .results()
                            .iter()
                            .map(|result| result.points().iter().map(MeasurePoint::value).collect())
                            .collect(),
                    );
                }

                let started = Instant::now();
                let mut probabilities = vec![0.0f64; leaves.len()];
                let mut results = Vec::with_capacity(valuations.len());
                for (k, valuation) in valuations.iter().enumerate() {
                    let values = valuation.values();
                    let mut points = Vec::with_capacity(unique_times.len());
                    for (slot, &t) in unique_times.iter().enumerate() {
                        for (p, leaf) in probabilities.iter_mut().zip(leaves) {
                            *p = match leaf {
                                ParametricLeaf::Unused => 0.0,
                                ParametricLeaf::Basic { slot } => {
                                    -(-values[*slot as usize] * t).exp_m1()
                                }
                                ParametricLeaf::Core { index } => core_curves[*index][k][slot],
                            };
                        }
                        points.push(MeasurePoint::exact(
                            Some(t),
                            crown.probability(&probabilities),
                        ));
                    }
                    results.push(MeasureResult::new(
                        slots.iter().map(|&slot| points[slot]).collect(),
                    ));
                }
                query_time += started.elapsed();
                Ok(RateSweep {
                    results,
                    instantiate_time,
                    query_time,
                })
            }
        }
    }

    /// Convenience sweep of [`Measure::Unreliability`] at mission time `t`: the
    /// query surface of a rate-sensitivity study (one unreliability value per
    /// valuation, one aggregation total).
    ///
    /// # Errors
    ///
    /// Same as [`sweep_query`](Self::sweep_query).
    pub fn sweep_unreliability(&self, t: f64, valuations: &[Valuation]) -> Result<RateSweep> {
        self.sweep_query(&Measure::Unreliability(t), valuations)
    }

    /// The parameter slots of the model: what each slot means, its base value,
    /// and the [`Valuation`] constructors.
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// The valuation reproducing the original tree's rates.
    pub fn base_valuation(&self) -> Valuation {
        self.params.base_valuation()
    }

    /// The options the session was built with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Statistics of the (single) compositional aggregation run.
    pub fn aggregation_stats(&self) -> &AggregationStats {
        &self.aggregation
    }

    /// Size of the closed parametric model.
    pub fn model_stats(&self) -> ModelStats {
        self.model_stats
    }

    /// How many times this session has run compositional aggregation: 1 for a
    /// freshly built session — however many valuations were instantiated or
    /// swept — one per dynamic core for a hybrid build, and 0 for a session
    /// restored via [`from_bytes`](Self::from_bytes), which reuses the
    /// original builder's aggregation instead of running its own.
    pub fn aggregation_runs(&self) -> usize {
        match &self.backend {
            ParametricBackend::Hybrid { cores, .. } if self.ran_aggregation => cores.len(),
            _ => usize::from(self.ran_aggregation),
        }
    }

    /// Returns `true` if the parametric model contains immediate
    /// non-determinism, so instantiated sessions report scheduler bounds.
    pub fn is_nondeterministic(&self) -> bool {
        match &self.backend {
            ParametricBackend::Compositional { point_valued, .. } => !point_valued,
            // Hybrid sessions are only ever built from deterministic cores.
            ParametricBackend::Hybrid { .. } => false,
        }
    }

    /// The closed, minimised parametric I/O-IMC (compositional backend only; a
    /// hybrid session has one parametric model per core).
    pub fn final_model(&self) -> Option<&ParametricIoImc> {
        match &self.backend {
            ParametricBackend::Compositional { closed, .. } => Some(closed),
            ParametricBackend::Hybrid { .. } => None,
        }
    }

    /// The observable top-failure action of the cached model (compositional
    /// backend only).
    pub fn top_failure(&self) -> Option<Action> {
        match &self.backend {
            ParametricBackend::Compositional { top_failure, .. } => Some(*top_failure),
            ParametricBackend::Hybrid { .. } => None,
        }
    }

    /// The modularization record of the hybrid decomposition — same contract
    /// as [`Analyzer::module_stats`]: `Some` certifies that the decomposition
    /// actually happened rather than falling back.
    pub fn module_stats(&self) -> Option<ModuleStats> {
        match &self.backend {
            ParametricBackend::Hybrid { modules, .. } => Some(*modules),
            ParametricBackend::Compositional { .. } => None,
        }
    }

    /// Serializes the parametric session into the versioned binary container
    /// of the persistent model cache (see [`crate::store`]): the closed
    /// parametric quotient (rates as sparse linear forms), the
    /// [`ParamTable`], the precomputed can/must goal sets, statistics and
    /// options.
    ///
    /// The inverse is [`from_bytes`](Self::from_bytes); a restored session
    /// instantiates every valuation bit-identically to this one and reports
    /// [`aggregation_runs`](Self::aggregation_runs)` == 0`.
    pub fn to_bytes(&self) -> Vec<u8> {
        store::seal(
            store::Kind::Parametric,
            0,
            self.options.epsilon.to_bits(),
            &self.encode_payload(),
        )
    }

    /// Restores a session serialized with [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] on truncated, corrupted or stale input; never
    /// panics on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<ParametricAnalyzer> {
        store::unseal(bytes, store::Kind::Parametric, None)
            .and_then(ParametricAnalyzer::decode_payload)
            .map_err(|e| Error::Store {
                message: e.to_string(),
            })
    }

    /// The unframed payload body of [`to_bytes`](Self::to_bytes).
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_body(&mut w);
        w.into_bytes()
    }

    /// Writes the session body onto a shared writer (hybrid payloads embed one
    /// body per core).  Compositional-method payloads keep the exact format-1
    /// byte layout; under [`Method::Hybrid`] a backend tag follows the model
    /// statistics (0 = compositional fallback, 2 = genuine hybrid).
    fn encode_body(&self, w: &mut Writer) {
        store::encode_options(&self.options, w);
        w.bool(self.repairable);
        store::encode_aggregation_stats(&self.aggregation, w);
        store::encode_model_stats(self.model_stats, w);
        match &self.backend {
            ParametricBackend::Compositional {
                closed,
                top_failure,
                has_repair,
                can,
                must,
                point_valued,
                sweep_template: _, // derived lazily and deterministically
            } => {
                if self.options.method == Method::Hybrid {
                    w.u8(0);
                }
                w.str(top_failure.name());
                w.bool(*has_repair);
                w.bool(*point_valued);
                encode_params(&self.params, w);
                codec::encode_model(closed, w);
                store::encode_bools(can, w);
                store::encode_bools(must, w);
            }
            ParametricBackend::Hybrid {
                crown,
                leaves,
                cores,
                modules,
            } => {
                w.u8(2);
                encode_params(&self.params, w);
                store::encode_module_stats(*modules, w);
                w.len_prefix(crown.node_count());
                for node in crown.nodes() {
                    w.u32(node.var);
                    w.u32(node.lo);
                    w.u32(node.hi);
                }
                w.u32(crown.root());
                w.len_prefix(leaves.len());
                for leaf in leaves {
                    match leaf {
                        ParametricLeaf::Unused => w.u8(0),
                        ParametricLeaf::Basic { slot } => {
                            w.u8(1);
                            w.u32(*slot);
                        }
                        ParametricLeaf::Core { index } => {
                            w.u8(2);
                            w.u32(u32::try_from(*index).expect("core count fits in u32"));
                        }
                    }
                }
                w.len_prefix(cores.len());
                for core in cores {
                    w.len_prefix(core.slots.len());
                    for &slot in &core.slots {
                        w.u32(slot);
                    }
                    core.analyzer.encode_body(w);
                }
            }
        }
    }

    /// Decodes a payload produced by [`encode_payload`](Self::encode_payload).
    pub(crate) fn decode_payload(payload: &[u8]) -> DecodeResult<ParametricAnalyzer> {
        let mut r = Reader::new(payload);
        let session = ParametricAnalyzer::decode_body(&mut r)?;
        if !r.is_done() {
            return Err(DecodeError::new(
                "trailing bytes after the parametric payload",
            ));
        }
        Ok(session)
    }

    /// Reads one parametric session body from a shared reader (the inverse of
    /// [`encode_body`](Self::encode_body)).
    fn decode_body(r: &mut Reader) -> DecodeResult<ParametricAnalyzer> {
        let options = store::decode_options(r)?;
        if options.method == Method::Monolithic {
            return Err(DecodeError::new("parametric sessions are never monolithic"));
        }
        let repairable = r.bool()?;
        let aggregation = store::decode_aggregation_stats(r)?;
        let model_stats = store::decode_model_stats(r)?;
        let backend_tag = if options.method == Method::Hybrid {
            r.u8()?
        } else {
            0
        };
        let (params, backend) = match backend_tag {
            0 => {
                let top_failure = Action::new(&r.str()?);
                let has_repair = r.bool()?;
                let point_valued = r.bool()?;
                let params = decode_params(r)?;
                let closed = codec::decode_model::<ioimc::RateForm>(r)?;
                // Every rate form must stay inside the decoded parameter table —
                // `RateForm::eval` indexes the valuation unchecked at
                // instantiation time, so an out-of-range slot in a corrupted
                // entry must die here.
                for t in closed.markovian() {
                    if let Some(max_slot) = t.rate.max_slot() {
                        if max_slot as usize >= params.len() {
                            return Err(DecodeError::new(format!(
                                "rate form references slot {max_slot} but the table has {} slots",
                                params.len()
                            )));
                        }
                    }
                }
                let can = store::decode_bools(r)?;
                let must = store::decode_bools(r)?;
                if can.len() != closed.num_states() || must.len() != closed.num_states() {
                    return Err(DecodeError::new(
                        "goal-set lengths disagree with the closed model",
                    ));
                }
                (
                    params,
                    ParametricBackend::Compositional {
                        closed,
                        top_failure,
                        has_repair,
                        can,
                        must,
                        point_valued,
                        sweep_template: OnceLock::new(),
                    },
                )
            }
            2 => {
                if repairable {
                    return Err(DecodeError::new(
                        "a hybrid decomposition cannot be repairable",
                    ));
                }
                let params = decode_params(r)?;
                let modules = store::decode_module_stats(r)?;
                let n = r.len_prefix(12)?;
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push(BddNode {
                        var: r.u32()?,
                        lo: r.u32()?,
                        hi: r.u32()?,
                    });
                }
                let root = r.u32()?;
                let crown = Bdd::from_parts(nodes, root)
                    .map_err(|e| DecodeError::new(format!("decoded crown BDD is invalid: {e}")))?;
                let n_leaves = r.len_prefix(1)?;
                let mut leaves = Vec::with_capacity(n_leaves);
                for _ in 0..n_leaves {
                    leaves.push(match r.u8()? {
                        0 => ParametricLeaf::Unused,
                        1 => {
                            let slot = r.u32()?;
                            if slot as usize >= params.len() {
                                return Err(DecodeError::new(
                                    "crown leaf references a missing parameter slot",
                                ));
                            }
                            ParametricLeaf::Basic { slot }
                        }
                        2 => ParametricLeaf::Core {
                            index: r.u32()? as usize,
                        },
                        tag => {
                            return Err(DecodeError::new(format!("unknown hybrid leaf tag {tag}")))
                        }
                    });
                }
                let n_cores = r.len_prefix(1)?;
                let mut cores = Vec::with_capacity(n_cores);
                for _ in 0..n_cores {
                    let n_slots = r.len_prefix(4)?;
                    let mut slots = Vec::with_capacity(n_slots);
                    for _ in 0..n_slots {
                        let slot = r.u32()?;
                        if slot as usize >= params.len() {
                            return Err(DecodeError::new(
                                "core projection references a missing parameter slot",
                            ));
                        }
                        slots.push(slot);
                    }
                    let analyzer = ParametricAnalyzer::decode_body(r)?;
                    if analyzer.options.method != Method::Compositional
                        || analyzer.is_nondeterministic()
                    {
                        return Err(DecodeError::new(
                            "hybrid cores must be deterministic compositional sessions",
                        ));
                    }
                    if slots.len() != analyzer.params.len() {
                        return Err(DecodeError::new(
                            "core projection length disagrees with the core's parameter table",
                        ));
                    }
                    cores.push(ParametricCore { analyzer, slots });
                }
                for leaf in &leaves {
                    if let ParametricLeaf::Core { index } = leaf {
                        if *index >= cores.len() {
                            return Err(DecodeError::new("hybrid leaf references a missing core"));
                        }
                    }
                }
                for var in crown.support() {
                    if !matches!(
                        leaves.get(var.index()),
                        Some(ParametricLeaf::Basic { .. } | ParametricLeaf::Core { .. })
                    ) {
                        return Err(DecodeError::new("crown BDD references an unused leaf"));
                    }
                }
                (
                    params,
                    ParametricBackend::Hybrid {
                        crown,
                        leaves,
                        cores,
                        modules,
                    },
                )
            }
            tag => {
                return Err(DecodeError::new(format!(
                    "unknown parametric backend tag {tag}"
                )))
            }
        };
        Ok(ParametricAnalyzer {
            options,
            repairable,
            aggregation,
            ran_aggregation: false,
            model_stats,
            params,
            backend,
        })
    }
}

/// Shared [`ParamTable`] codec for the parametric payload layouts.
fn encode_params(params: &ParamTable, w: &mut Writer) {
    w.len_prefix(params.len());
    for slot in params.slots() {
        w.str(&slot.element);
        w.u8(match slot.kind {
            ParamKind::Failure => 0,
            ParamKind::Repair => 1,
        });
        w.f64(slot.base);
    }
}

fn decode_params(r: &mut Reader) -> DecodeResult<ParamTable> {
    let num_slots = r.len_prefix(10)?;
    let mut params = ParamTable::default();
    for _ in 0..num_slots {
        let element = r.str()?;
        let kind = match r.u8()? {
            0 => ParamKind::Failure,
            1 => ParamKind::Repair,
            other => {
                return Err(DecodeError::new(format!(
                    "invalid parameter kind tag {other}"
                )))
            }
        };
        let base = r.f64()?;
        params.push(&element, kind, base);
    }
    Ok(params)
}

/// The result of a rate sweep: one [`MeasureResult`] per valuation, in request
/// order, plus the wall-clock split between instantiation and querying.
#[derive(Debug, Clone)]
pub struct RateSweep {
    results: Vec<MeasureResult>,
    instantiate_time: Duration,
    query_time: Duration,
}

impl RateSweep {
    /// One result per valuation, in the order the valuations were passed.
    pub fn results(&self) -> &[MeasureResult] {
        &self.results
    }

    /// The scalar values of all results, in valuation order (see
    /// [`MeasureResult::value`] for the non-determinism convention).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.results.iter().map(MeasureResult::value)
    }

    /// Number of valuations evaluated.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Returns `true` for a sweep over no valuations.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Total time spent evaluating rate forms and building CTMDPs.
    pub fn instantiate_time(&self) -> Duration {
        self.instantiate_time
    }

    /// Total time spent answering the measure queries.
    pub fn query_time(&self) -> Duration {
        self.query_time
    }
}

/// Rejects mission times no transient analysis can answer — NaN, infinite or
/// negative — with a typed error at the query boundary, so they never reach
/// the uniformisation routines (which would report them as an untyped
/// numerical [`markov::Error::InvalidValue`] from deep inside
/// `Ctmc::transient`).
fn validate_mission_time(t: f64) -> Result<()> {
    if t.is_finite() && t >= 0.0 {
        Ok(())
    } else {
        Err(Error::InvalidMissionTime { value: t })
    }
}

/// Converts a closed I/O-IMC into the CTMDP state vector used by the `markov`
/// crate: urgent states offer their immediate successors as a non-deterministic
/// choice, all other states race their Markovian transitions.
fn ctmdp_states_of(closed: &IoImc) -> Vec<CtmdpState> {
    closed
        .states()
        .map(|s| {
            let immediate: Vec<u32> = closed
                .interactive_from(s)
                .iter()
                .filter(|t| t.label.is_immediate())
                .map(|t| t.to.index() as u32)
                .collect();
            if !immediate.is_empty() {
                CtmdpState::Immediate(immediate)
            } else {
                CtmdpState::Markovian(
                    closed
                        .markovian_from(s)
                        .iter()
                        .map(|t| (t.to.index() as u32, t.rate))
                        .collect(),
                )
            }
        })
        .collect()
}

/// Eliminates the remaining immediate (vanishing) states of a closed, deterministic
/// I/O-IMC and returns the embedded CTMC together with a boolean label vector for
/// the given atomic proposition.
///
/// # Errors
///
/// Returns [`Error::Ioimc`] wrapping a non-determinism error if some vanishing
/// state has more than one immediate successor, and [`Error::Unsupported`] if an
/// immediate cycle (divergence) survives into the closed model — such a chain has
/// no embedded CTMC.
fn extract_ctmc_with_label(closed: &IoImc, prop: &str) -> Result<(Ctmc, Vec<bool>)> {
    check_deterministic(closed).map_err(Error::from)?;
    let prop_id = closed.prop(prop);

    // Resolve each state to the non-urgent state its immediate chain ends in; an
    // immediate cycle never reaches one, which surfaces as an error rather than a
    // panic further down.
    let resolve = |start: ioimc::StateId| -> Result<ioimc::StateId> {
        let mut current = start;
        let mut hops = 0;
        loop {
            let next = closed
                .interactive_from(current)
                .iter()
                .find(|t| t.label.is_immediate())
                .map(|t| t.to);
            match next {
                Some(n) => {
                    current = n;
                    hops += 1;
                    if hops > closed.num_states() {
                        return Err(Error::Unsupported {
                            message: format!(
                                "the closed model diverges: state {} starts a cycle of \
                                 immediate transitions, so no embedded CTMC exists",
                                start.index()
                            ),
                        });
                    }
                }
                None => return Ok(current),
            }
        }
    };

    // Tangible states (no outgoing immediate transition) form the CTMC.
    let tangible: Vec<ioimc::StateId> = closed.states().filter(|&s| !closed.is_urgent(s)).collect();
    let index_of = |s: ioimc::StateId| -> u32 {
        tangible
            .binary_search(&s)
            .expect("resolve() only returns non-urgent states, which are all tangible")
            as u32
    };

    let mut transitions: Vec<(u32, u32, f64)> = Vec::new();
    for &s in &tangible {
        for t in closed.markovian_from(s) {
            transitions.push((index_of(s), index_of(resolve(t.to)?), t.rate));
        }
    }
    let initial = index_of(resolve(closed.initial())?) as usize;
    let ctmc = Ctmc::from_transitions(tangible.len(), initial, &transitions)?;
    let labels = tangible
        .iter()
        .map(|&s| prop_id.map(|p| closed.has_prop(s, p)).unwrap_or(false))
        .collect();
    Ok((ctmc, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn exp_cdf(rate: f64, t: f64) -> f64 {
        1.0 - (-rate * t).exp()
    }

    #[test]
    fn one_session_serves_every_measure() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("en_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("en_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();

        // Erlang(2, 1) failure time.
        let t = 1.0;
        let r = analyzer.unreliability(t).unwrap();
        let exact = 1.0 - (-t).exp() * (1.0 + t);
        assert!((r.value() - exact).abs() < 1e-6, "{} vs {exact}", r.value());
        assert!(!r.is_nondeterministic());

        let mttf = analyzer.mttf().unwrap();
        assert!((mttf.value() - 2.0).abs() < 1e-6, "{}", mttf.value());

        assert!(analyzer.unavailability().is_err(), "not repairable");
        assert_eq!(analyzer.aggregation_runs(), 1);
        assert!(analyzer.aggregation_stats().is_some());
        assert!(analyzer.model_stats().states > 0);
        assert!(analyzer.final_model().is_some());
        assert!(analyzer.top_failure().is_some());
    }

    #[test]
    fn curve_points_match_single_time_queries_exactly() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en2_X", 0.7, Dormancy::Hot).unwrap();
        let y = b.basic_event("en2_Y", 1.3, Dormancy::Hot).unwrap();
        let top = b.and_gate("en2_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();

        let times = [0.1, 0.5, 1.0, 2.0, 4.0];
        let curve = analyzer.unreliability_curve(&times).unwrap();
        assert_eq!(curve.len(), times.len());
        for (point, &t) in curve.points().iter().zip(&times) {
            assert_eq!(point.time(), Some(t));
            let single = analyzer.unreliability(t).unwrap();
            assert_eq!(point.value().to_bits(), single.value().to_bits());
            let exact = exp_cdf(0.7, t) * exp_cdf(1.3, t);
            assert!((point.value() - exact).abs() < 1e-7);
        }
    }

    #[test]
    fn monolithic_sessions_answer_curves_too() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en3_X", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("en3_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(analyzer.aggregation_runs(), 0);
        assert!(analyzer.aggregation_stats().is_none());
        let curve = analyzer.unreliability_curve(&[0.5, 1.0]).unwrap();
        for (point, t) in curve.points().iter().zip([0.5, 1.0]) {
            assert!((point.value() - exp_cdf(1.0, t)).abs() < 1e-7);
        }
        assert!(analyzer.unavailability().is_err());
        assert!((analyzer.mttf().unwrap().value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn repairable_sessions_serve_unavailability() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("en4_X", 1.0, Dormancy::Hot, 9.0)
            .unwrap();
        let top = b.or_gate("en4_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let u = analyzer.unavailability().unwrap();
        assert!((u.value() - 0.1).abs() < 1e-6, "{}", u.value());
        assert!(!u.is_nondeterministic());
        // The same session also answers unreliability and MTTF queries.
        let r = analyzer.unreliability(1.0).unwrap();
        assert!(r.value() > 0.0 && r.value() < 1.0);
        let mttf = analyzer.mttf().unwrap();
        assert!((mttf.value() - 1.0).abs() < 1e-6, "{}", mttf.value());
        assert_eq!(analyzer.aggregation_runs(), 1);
    }

    fn bits_of(result: &MeasureResult) -> Vec<(Option<u64>, u64, u64, u64)> {
        result
            .points()
            .iter()
            .map(|p| {
                (
                    p.time().map(f64::to_bits),
                    p.value().to_bits(),
                    p.bounds().0.to_bits(),
                    p.bounds().1.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn sessions_round_trip_bit_identically_through_bytes() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("en6_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("en6_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en6_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let built = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();

        assert_eq!(restored.aggregation_runs(), 0, "no pipeline ran on restore");
        assert_eq!(built.aggregation_runs(), 1);
        let built_stats = built.aggregation_stats().unwrap();
        let restored_stats = restored.aggregation_stats().unwrap();
        assert_eq!(restored_stats.peak, built_stats.peak);
        assert_eq!(restored_stats.steps.len(), built_stats.steps.len());
        assert_eq!(restored.model_stats(), built.model_stats());

        let measures = [
            Measure::Unreliability(1.0),
            Measure::curve([0.25, 0.5, 1.0, 2.0]),
            Measure::Mttf,
        ];
        for measure in &measures {
            let a = built.query(measure).unwrap();
            let b = restored.query(measure).unwrap();
            assert_eq!(bits_of(&a), bits_of(&b), "{measure:?} must round-trip");
        }
    }

    #[test]
    fn monolithic_sessions_round_trip_too() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en7_X", 0.7, Dormancy::Hot).unwrap();
        let y = b.basic_event("en7_Y", 1.3, Dormancy::Hot).unwrap();
        let top = b.and_gate("en7_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let built = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();
        assert_eq!(restored.method(), Method::Monolithic);
        let a = built.query(Measure::curve([0.5, 1.0])).unwrap();
        let b = restored.query(Measure::curve([0.5, 1.0])).unwrap();
        assert_eq!(bits_of(&a), bits_of(&b));
        let a = built.mttf().unwrap();
        let b = restored.mttf().unwrap();
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn repairable_sessions_round_trip_with_unavailability() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("en8_X", 1.0, Dormancy::Hot, 9.0)
            .unwrap();
        let top = b.or_gate("en8_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let built = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();
        // Unavailability exercises the lazily extracted tangible CTMC, which
        // the restored session re-derives from the decoded closed model.
        let a = built.unavailability().unwrap();
        let b = restored.unavailability().unwrap();
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn parametric_sessions_round_trip_bit_identically_through_bytes() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("en9_P", 0.8, Dormancy::Hot).unwrap();
        let s = b.basic_event("en9_S", 1.2, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en9_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let built = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = ParametricAnalyzer::from_bytes(&built.to_bytes()).unwrap();

        assert_eq!(restored.aggregation_runs(), 0);
        assert_eq!(built.aggregation_runs(), 1);
        assert_eq!(restored.params(), built.params());
        assert_eq!(restored.model_stats(), built.model_stats());

        for scale in [0.5, 1.0, 2.5] {
            let valuation = built.params().scaled_valuation(scale);
            let a = built.instantiate(&valuation).unwrap();
            let b = restored.instantiate(&valuation).unwrap();
            assert_eq!(b.aggregation_runs(), 0);
            let qa = a.query(Measure::curve([0.5, 1.0])).unwrap();
            let qb = b.query(Measure::curve([0.5, 1.0])).unwrap();
            assert_eq!(bits_of(&qa), bits_of(&qb));
        }
    }

    #[test]
    fn batched_sweeps_match_per_point_queries_bit_for_bit() {
        // A nondeterministic model (FDEP trigger under a PAND) exercises both
        // the optimistic and pessimistic kernel passes of the batched sweep.
        let mut b = DftBuilder::new();
        let t = b.basic_event("en11_T", 0.5, Dormancy::Hot).unwrap();
        let x = b.basic_event("en11_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("en11_Y", 1.3, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("en11_F", t, &[x, y]).unwrap();
        let top = b.pand_gate("en11_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert!(parametric.is_nondeterministic());

        let valuations: Vec<Valuation> = [0.6, 1.0, 1.7]
            .iter()
            .map(|&s| parametric.params().scaled_valuation(s))
            .collect();
        // A curve with a duplicate time bound exercises the merged-grid plan.
        let measure = Measure::curve([0.4, 1.0, 0.4, 2.0]);
        for cap in [1usize, 2, 4] {
            markov::kernel::set_max_workers(cap);
            let sweep = parametric.sweep_query(&measure, &valuations).unwrap();
            assert_eq!(sweep.len(), valuations.len());
            for (valuation, result) in valuations.iter().zip(sweep.results()) {
                let reference = parametric
                    .instantiate(valuation)
                    .unwrap()
                    .query(measure.clone())
                    .unwrap();
                assert_eq!(bits_of(result), bits_of(&reference), "cap {cap}");
            }
        }
        markov::kernel::set_max_workers(0);

        // An empty sweep stays a no-op, and an empty curve still errors when
        // there is at least one valuation to evaluate it for.
        assert!(parametric.sweep_query(&measure, &[]).unwrap().is_empty());
        assert!(parametric
            .sweep_query(&Measure::curve([]), &valuations)
            .is_err());
        assert!(parametric
            .sweep_query(&Measure::curve([]), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn point_valued_sweeps_batch_through_one_pass() {
        // A deterministic model takes the point-valued shortcut (the lower
        // pass is the upper pass); results must still match per-point queries.
        let mut b = DftBuilder::new();
        let p = b.basic_event("en12_P", 0.8, Dormancy::Hot).unwrap();
        let s = b.basic_event("en12_S", 1.2, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en12_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert!(!parametric.is_nondeterministic());

        let valuations: Vec<Valuation> = [1.0, 1.5]
            .iter()
            .map(|&s| parametric.params().scaled_valuation(s))
            .collect();
        let sweep = parametric.sweep_unreliability(0.9, &valuations).unwrap();
        for (valuation, result) in valuations.iter().zip(sweep.results()) {
            assert!(!result.is_nondeterministic());
            let reference = parametric
                .instantiate(valuation)
                .unwrap()
                .unreliability(0.9)
                .unwrap();
            assert_eq!(bits_of(result), bits_of(&reference));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage_without_panicking() {
        assert!(Analyzer::from_bytes(&[]).is_err());
        assert!(Analyzer::from_bytes(b"not a store entry at all").is_err());
        assert!(ParametricAnalyzer::from_bytes(&[0xff; 64]).is_err());

        let mut bt = DftBuilder::new();
        let x = bt.basic_event("en10_X", 1.0, Dormancy::Hot).unwrap();
        let top = bt.or_gate("en10_Top", &[x]).unwrap();
        let dft = bt.build(top).unwrap();
        let bytes = Analyzer::new(&dft, AnalysisOptions::default())
            .unwrap()
            .to_bytes();
        // Session bytes are not parametric bytes (the kind tag differs) …
        assert!(ParametricAnalyzer::from_bytes(&bytes).is_err());
        // … every truncation fails cleanly …
        for cut in [0, 4, 9, 17, 33, bytes.len() - 1] {
            assert!(Analyzer::from_bytes(&bytes[..cut]).is_err());
        }
        // … and any flipped payload byte trips the checksum.
        for i in (41..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Analyzer::from_bytes(&bad).is_err());
        }
    }

    #[test]
    fn nondeterministic_models_report_bounds() {
        // FDEP trigger feeding both inputs of a PAND (Figure 6a): the failure
        // order is unresolved, so unreliability is an interval.
        let mut b = DftBuilder::new();
        let t = b.basic_event("en5_T", 0.5, Dormancy::Hot).unwrap();
        let x = b.basic_event("en5_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("en5_Y", 1.0, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("en5_F", t, &[x, y]).unwrap();
        let top = b.pand_gate("en5_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert!(analyzer.is_nondeterministic());
        let r = analyzer.unreliability(1.0).unwrap();
        assert!(r.is_nondeterministic());
        let (lo, hi) = r.bounds();
        assert!(lo < hi, "bounds ({lo}, {hi}) should be a proper interval");
        // MTTF needs a CTMC; the CTMDP must be rejected, not mis-analysed.
        assert!(analyzer.mttf().is_err());
    }

    /// A mixed tree whose dynamic core (a spare pair) sits under a static
    /// crown: OR(SPARE(P, S), AND(X, Y)).
    fn mixed_tree(prefix: &str) -> Dft {
        let mut b = DftBuilder::new();
        let p = b
            .basic_event(&format!("{prefix}_P"), 1.0, Dormancy::Hot)
            .unwrap();
        let s = b
            .basic_event(&format!("{prefix}_S"), 1.0, Dormancy::Cold)
            .unwrap();
        let core = b.spare_gate(&format!("{prefix}_Core"), &[p, s]).unwrap();
        let x = b
            .basic_event(&format!("{prefix}_X"), 0.5, Dormancy::Hot)
            .unwrap();
        let y = b
            .basic_event(&format!("{prefix}_Y"), 0.25, Dormancy::Hot)
            .unwrap();
        let stat = b.and_gate(&format!("{prefix}_Stat"), &[x, y]).unwrap();
        let top = b.or_gate(&format!("{prefix}_Top"), &[core, stat]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn hybrid_matches_compositional_on_a_mixed_tree() {
        let dft = mixed_tree("en13");
        let options = AnalysisOptions {
            epsilon: 1e-13,
            ..AnalysisOptions::default()
        };
        let reference = Analyzer::new(&dft, options.clone()).unwrap();
        let hybrid = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Hybrid,
                ..options
            },
        )
        .unwrap();

        assert_eq!(hybrid.method(), Method::Hybrid);
        let modules = hybrid
            .module_stats()
            .expect("the decomposition must happen");
        assert_eq!(modules.core_count, 1);
        assert!(
            hybrid.model_stats().states < reference.model_stats().states,
            "{} vs {}",
            hybrid.model_stats().states,
            reference.model_stats().states
        );
        // One aggregation pipeline per core.
        assert_eq!(hybrid.aggregation_runs(), 1);
        assert!(hybrid.aggregation_stats().is_some());
        assert!(!hybrid.is_nondeterministic());

        let times = [0.25, 0.5, 1.0, 2.0];
        let h = hybrid.unreliability_curve(&times).unwrap();
        let c = reference.unreliability_curve(&times).unwrap();
        for (hp, cp) in h.points().iter().zip(c.points()) {
            assert!(
                (hp.value() - cp.value()).abs() < 1e-12,
                "{} vs {}",
                hp.value(),
                cp.value()
            );
        }
        // MTTF and unavailability are outside the hybrid crown's scope.
        assert!(hybrid.mttf().is_err());
        assert!(hybrid.unavailability().is_err());
    }

    #[test]
    fn hybrid_on_a_fully_static_tree_needs_no_states_at_all() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en14_X", 0.5, Dormancy::Hot).unwrap();
        let y = b.basic_event("en14_Y", 1.0, Dormancy::Hot).unwrap();
        let z = b.basic_event("en14_Z", 2.0, Dormancy::Hot).unwrap();
        let vote = b.voting_gate("en14_Top", 2, &[x, y, z]).unwrap();
        let dft = b.build(vote).unwrap();
        let hybrid = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Hybrid,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        let modules = hybrid.module_stats().unwrap();
        assert_eq!(modules.core_count, 0);
        assert_eq!(hybrid.model_stats().states, 0);
        assert_eq!(hybrid.aggregation_runs(), 0);

        // 2-of-3 closed form: sum of pairs minus twice the triple.
        let t = 0.8;
        let (px, py, pz) = (exp_cdf(0.5, t), exp_cdf(1.0, t), exp_cdf(2.0, t));
        let exact = px * py + px * pz + py * pz - 2.0 * px * py * pz;
        let r = hybrid.unreliability(t).unwrap();
        assert!(
            (r.value() - exact).abs() < 1e-14,
            "{} vs {exact}",
            r.value()
        );
    }

    #[test]
    fn hybrid_falls_back_for_repairable_and_nondeterministic_trees() {
        // Repairable tree: the fallback must still serve unavailability.
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("en15_X", 1.0, Dormancy::Hot, 2.0)
            .unwrap();
        let top = b.or_gate("en15_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let hybrid = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Hybrid,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(hybrid.method(), Method::Hybrid);
        assert!(hybrid.module_stats().is_none(), "fallback, not hybrid");
        // Steady-state unavailability of a single repairable event: λ/(λ+μ).
        let u = hybrid.unavailability().unwrap();
        assert!((u.value() - 1.0 / 3.0).abs() < 1e-6, "{}", u.value());

        // Non-deterministic core (FDEP trigger into a PAND): the hybrid label
        // must keep reporting honest scheduler bounds via the fallback.
        let mut b = DftBuilder::new();
        let t = b.basic_event("en15_T", 0.5, Dormancy::Hot).unwrap();
        let p = b.basic_event("en15_P", 1.0, Dormancy::Hot).unwrap();
        let q = b.basic_event("en15_Q", 1.0, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("en15_F", t, &[p, q]).unwrap();
        let pand = b.pand_gate("en15_Pand", &[p, q]).unwrap();
        let dft = b.build(pand).unwrap();
        let hybrid = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Hybrid,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert!(hybrid.module_stats().is_none(), "fallback, not hybrid");
        assert!(hybrid.is_nondeterministic());
        let r = hybrid.unreliability(1.0).unwrap();
        let (lo, hi) = r.bounds();
        assert!(lo < hi);
    }

    #[test]
    fn hybrid_sessions_roundtrip_through_bytes() {
        let dft = mixed_tree("en16");
        let options = AnalysisOptions {
            method: Method::Hybrid,
            ..AnalysisOptions::default()
        };
        let hybrid = Analyzer::new(&dft, options).unwrap();
        let restored = Analyzer::from_bytes(&hybrid.to_bytes()).unwrap();

        assert_eq!(restored.method(), Method::Hybrid);
        assert_eq!(restored.module_stats(), hybrid.module_stats());
        assert_eq!(restored.model_stats(), hybrid.model_stats());
        assert_eq!(
            restored.aggregation_runs(),
            0,
            "restored sessions ran nothing"
        );

        let measure = Measure::UnreliabilityCurve(vec![0.5, 1.0, 3.0]);
        assert_eq!(
            bits_of(&hybrid.query(&measure).unwrap()),
            bits_of(&restored.query(&measure).unwrap()),
            "a restored hybrid session must answer bit-identically"
        );

        // Corruption safety: truncations and bit flips die cleanly.
        let bytes = hybrid.to_bytes();
        for cut in [0, 4, 9, 17, 33, bytes.len() - 1] {
            assert!(Analyzer::from_bytes(&bytes[..cut]).is_err());
        }
        for i in (41..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Analyzer::from_bytes(&bad).is_err());
        }
    }

    #[test]
    fn parametric_hybrid_matches_instantiate_plus_query() {
        let dft = mixed_tree("en17");
        let options = AnalysisOptions {
            method: Method::Hybrid,
            ..AnalysisOptions::default()
        };
        let parametric = ParametricAnalyzer::new(&dft, options.clone()).unwrap();
        assert!(parametric.module_stats().is_some());
        assert_eq!(parametric.aggregation_runs(), 1);

        // The parameter surface is the same table the compositional session
        // exposes: one failure slot per basic event, in element order.
        let reference = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert_eq!(
            parametric.params().len(),
            reference.params().len(),
            "hybrid and compositional sessions must agree on the slots"
        );

        let valuations: Vec<Valuation> = (1..=4)
            .map(|i| parametric.params().scaled_valuation(i as f64 * 0.5))
            .collect();
        let measure = Measure::UnreliabilityCurve(vec![0.5, 1.0, 2.0]);
        let sweep = parametric.sweep_query(&measure, &valuations).unwrap();

        for (valuation, swept) in valuations.iter().zip(sweep.results()) {
            // Bit-identical to the per-point path on the hybrid session …
            let direct = parametric
                .instantiate(valuation)
                .unwrap()
                .query(&measure)
                .unwrap();
            assert_eq!(bits_of(swept), bits_of(&direct));
            // … and within tolerance of the compositional reference.
            let full = reference
                .instantiate(valuation)
                .unwrap()
                .query(&measure)
                .unwrap();
            for (hp, cp) in swept.points().iter().zip(full.points()) {
                assert!(
                    (hp.value() - cp.value()).abs() < 1e-7,
                    "{} vs {}",
                    hp.value(),
                    cp.value()
                );
            }
        }

        // The parametric hybrid session roundtrips through bytes.
        let restored = ParametricAnalyzer::from_bytes(&parametric.to_bytes()).unwrap();
        assert_eq!(restored.module_stats(), parametric.module_stats());
        assert_eq!(restored.aggregation_runs(), 0);
        let base = parametric.base_valuation();
        assert_eq!(
            bits_of(
                &restored
                    .instantiate(&base)
                    .unwrap()
                    .query(&measure)
                    .unwrap()
            ),
            bits_of(
                &parametric
                    .instantiate(&base)
                    .unwrap()
                    .query(&measure)
                    .unwrap()
            ),
        );
    }
}
