//! The session-style analysis engine: build the model once, query it many times.
//!
//! The paper's pipeline — convert the DFT to an I/O-IMC community, then
//! compose/hide/minimise it down to one small model — is by far the most expensive
//! part of an analysis, yet it does not depend on the measure being asked.
//! [`Analyzer::new`] therefore runs validation, conversion and compositional
//! aggregation (or monolithic CTMC generation) *exactly once*, caches the closed
//! final model together with its [`AggregationStats`]/[`ModelStats`], and then
//! serves any number of typed [`Measure`] queries against
//! the cache:
//!
//! ```text
//! Analyzer::new:  DFT ──convert──▶ community (+ monitor) ──aggregate──▶ model
//! query(…):       model ──uniformisation──▶ unreliability (point or curve)
//!                 model ──steady state───▶ unavailability
//!                 model ──first passage──▶ MTTF
//! ```
//!
//! A mission-time sweep through [`Measure::UnreliabilityCurve`] additionally
//! shares the uniformisation pass between all time points, so a 100-point curve
//! costs one aggregation and roughly one analysis, where the legacy one-shot
//! entry points (see [`crate::analysis`]) would have paid for 100 of each.
//!
//! # Example
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::engine::Analyzer;
//! use dft_core::query::Measure;
//! use dft_core::AnalysisOptions;
//!
//! # fn main() -> Result<(), dft_core::Error> {
//! let mut b = DftBuilder::new();
//! let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
//! let top = b.or_gate("Top", &[x])?;
//! let dft = b.build(top)?;
//!
//! // Build the aggregation pipeline once …
//! let analyzer = Analyzer::new(&dft, AnalysisOptions::default())?;
//! // … then answer many queries against the cached model.
//! let curve = analyzer.query(Measure::curve([0.5, 1.0, 2.0]))?;
//! let mttf = analyzer.query(Measure::Mttf)?;
//! assert_eq!(curve.len(), 3);
//! assert!((mttf.value() - 1.0).abs() < 1e-6);
//! assert_eq!(analyzer.aggregation_runs(), 1);
//! # Ok(())
//! # }
//! ```

use crate::aggregate::{aggregate, AggregationOptions, AggregationStats};
use crate::analysis::{AnalysisOptions, Method};
use crate::baseline;
use crate::convert::{convert, convert_parametric, CommunityOf};
use crate::parametric::{ParamKind, ParamTable, Valuation};
use crate::query::{Measure, MeasurePoint, MeasureResult};
use crate::semantics::monitor;
use crate::store;
use crate::{Error, Result};
use dft::Dft;
use ioimc::bisim::minimize;
use ioimc::closed::{
    can_fire_immediately, check_deterministic, drop_input_transitions, must_fire_immediately,
};
use ioimc::codec::{self, DecodeError, DecodeResult, Reader, Writer};
use ioimc::stats::ModelStats;
use ioimc::{Action, IoImc, IoImcOf, ParametricIoImc, Rate};
use markov::ctmdp::{Ctmdp, CtmdpState};
use markov::kernel::RelaxKernel;
use markov::steady::steady_state_probability;
use markov::Ctmc;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Name of the monitor process composed into the community, and of the atomic
/// proposition it attaches to its "system is down" state.
const MONITOR_NAME: &str = "system monitor";
const DOWN_PROP: &str = "down";

/// The closed, minimised model a compositional session is served from, with
/// its aggregation statistics and scheduler goal sets.
struct ClosedModel<R> {
    closed: IoImcOf<R>,
    stats: AggregationStats,
    top_failure: Action,
    has_repair: bool,
    /// Optimistic goal set: "can fire the top failure immediately".
    can: Vec<bool>,
    /// Pessimistic goal set: "must fire the top failure immediately".
    must: Vec<bool>,
    point_valued: bool,
}

/// The shared tail of both compositional constructors ([`Analyzer::new`] and
/// [`ParametricAnalyzer::new`]): compose the monitor into the community,
/// aggregate with the top failure kept observable, close and minimise the
/// result, and compute the goal sets — identically for numeric and symbolic
/// rates, so the two pipelines cannot drift apart.
fn aggregate_and_close<R: Rate>(community: CommunityOf<R>) -> Result<ClosedModel<R>> {
    let top_failure = community.top_failure;
    let has_repair = community.top_repair.is_some();

    // One community serves every measure: the monitor tracks whether the top
    // event is currently (repairable) or has ever been (non-repairable)
    // failed, and the kept top-failure output drives the reachability goals.
    let mut models = community.models;
    models.push(
        monitor(MONITOR_NAME, top_failure, community.top_repair)?
            .map_rates(|_| unreachable!("the monitor carries no Markovian transitions")),
    );
    let (final_model, stats) = aggregate(
        &models,
        &AggregationOptions {
            keep: vec![top_failure],
            ..AggregationOptions::default()
        },
    )?;
    let closed = minimize(&drop_input_transitions(&final_model));

    let can = can_fire_immediately(&closed, top_failure);
    let must = must_fire_immediately(&closed, top_failure);
    let deterministic = check_deterministic(&closed).is_ok();
    let point_valued = deterministic && can == must;

    Ok(ClosedModel {
        closed,
        stats,
        top_failure,
        has_repair,
        can,
        must,
        point_valued,
    })
}

/// A reusable analysis session for one DFT: the aggregation pipeline runs once in
/// [`Analyzer::new`], every [`query`](Analyzer::query) after that only touches the
/// cached final model.
///
/// `Analyzer` is `Send + Sync` (statically asserted below): queries take `&self`
/// and mutate nothing but an internal [`OnceLock`], so one session behind an
/// `Arc` can serve any number of threads concurrently — this is what the
/// [`AnalysisService`](crate::service::AnalysisService) worker pool and its model
/// cache rely on.
///
/// See the [module documentation](self) for an example.
#[derive(Debug)]
pub struct Analyzer {
    options: AnalysisOptions,
    repairable: bool,
    aggregation: Option<AggregationStats>,
    model_stats: ModelStats,
    backend: Backend,
    /// `true` only when *this* session executed the compositional pipeline:
    /// set by the compositional constructor, cleared for monolithic builds,
    /// parametric instantiations and sessions restored via
    /// [`from_bytes`](Self::from_bytes) (whose `aggregation` stats describe
    /// the run of the original builder, not of this process).
    ran_aggregation: bool,
}

/// The service layer shares `Arc<Analyzer>` across worker threads; losing either
/// auto-trait would silently serialize it again, so assert both at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Analyzer>()
};

/// The cached artifacts the queries are answered from.
#[derive(Debug)]
// One Backend lives per session, so the size gap between the two variants is
// irrelevant — boxing the compositional payload would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// The paper's compositional pipeline: the closed, minimised I/O-IMC with the
    /// top failure signal kept observable and a monitor process composed in.
    Compositional {
        closed: IoImc,
        top_failure: Action,
        has_repair: bool,
        /// `true` when the closed model has no immediate non-determinism *and*
        /// the optimistic and pessimistic goal sets coincide, so unreliability is
        /// a point value rather than an interval.
        point_valued: bool,
        /// CTMDP with the optimistic ("can fire the failure") goal set; its
        /// maximising analysis yields the upper bound.
        upper: Ctmdp,
        /// CTMDP with the pessimistic ("must fire the failure") goal set; its
        /// minimising analysis yields the lower bound.
        lower: Ctmdp,
        /// Embedded CTMC with the monitor's "down" labels, extracted lazily for
        /// the steady-state and first-passage measures (fails for CTMDPs).  A
        /// [`OnceLock`] rather than a `OnceCell` so a shared `Arc<Analyzer>` can
        /// be queried from many threads at once.
        tangible: OnceLock<Result<(Ctmc, Vec<bool>)>>,
    },
    /// The DIFTree-style baseline: one CTMC over the whole tree.
    Monolithic { ctmc: Ctmc, goal: Vec<bool> },
}

impl Analyzer {
    /// Builds the analysis session: validates and converts the DFT and runs
    /// compositional aggregation (or monolithic CTMC generation) exactly once.
    ///
    /// # Errors
    ///
    /// Propagates conversion, aggregation and numerical errors; returns
    /// [`Error::Unsupported`] for DFT features outside the selected method's
    /// scope.
    pub fn new(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        match options.method {
            Method::Compositional => Analyzer::compositional(dft, options),
            Method::Monolithic => Analyzer::monolithic(dft, options),
        }
    }

    fn compositional(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        let model = aggregate_and_close(convert(dft)?)?;

        let ctmdp_states = ctmdp_states_of(&model.closed);
        let initial = model.closed.initial().index();
        let upper = Ctmdp::new(ctmdp_states.clone(), initial, model.can)?;
        let lower = Ctmdp::new(ctmdp_states, initial, model.must)?;

        Ok(Analyzer {
            options,
            repairable: dft.is_repairable(),
            aggregation: Some(model.stats),
            model_stats: ModelStats::of(&model.closed),
            backend: Backend::Compositional {
                closed: model.closed,
                top_failure: model.top_failure,
                has_repair: model.has_repair,
                point_valued: model.point_valued,
                upper,
                lower,
                tangible: OnceLock::new(),
            },
            ran_aggregation: true,
        })
    }

    fn monolithic(dft: &Dft, options: AnalysisOptions) -> Result<Analyzer> {
        let result = baseline::monolithic_ctmc(dft)?;
        let model_stats = ModelStats {
            states: result.ctmc.num_states(),
            markovian_transitions: result.ctmc.num_transitions(),
            ..ModelStats::default()
        };
        Ok(Analyzer {
            options,
            repairable: dft.is_repairable(),
            aggregation: None,
            model_stats,
            backend: Backend::Monolithic {
                ctmc: result.ctmc,
                goal: result.goal,
            },
            ran_aggregation: false,
        })
    }

    /// Answers one typed query against the cached model.
    ///
    /// Accepts the measure by value or by reference (`Measure` is owned data, so
    /// batch callers keep their measures and pass `&m`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] when the cached method cannot produce the
    /// measure (unavailability needs a repairable model and the compositional
    /// method), [`Error::EmptyCurve`] for a curve query without time points,
    /// [`Error::InvalidMissionTime`] for a NaN/infinite/negative mission time
    /// (validated here at the boundary, not deep inside the numerics), and
    /// propagates numerical errors.  The construction work is *not* repeated on
    /// any path.
    pub fn query(&self, measure: impl Borrow<Measure>) -> Result<MeasureResult> {
        match measure.borrow() {
            Measure::Unreliability(t) => {
                validate_mission_time(*t)?;
                self.unreliability_points(&[*t])
            }
            Measure::UnreliabilityCurve(times) => {
                if times.is_empty() {
                    return Err(Error::EmptyCurve);
                }
                for &t in times {
                    validate_mission_time(t)?;
                }
                self.unreliability_points(times)
            }
            Measure::Unavailability => self.unavailability_point(),
            Measure::Mttf => self.mttf_point(),
        }
    }

    /// Answers a whole batch of measures against the cached model, sharing one
    /// uniformisation / value-iteration pass between *all* time-bounded measures
    /// in the batch.
    ///
    /// The requested mission times of every [`Measure::Unreliability`] and
    /// [`Measure::UnreliabilityCurve`] in `measures` are merged (deduplicated
    /// bit-exactly), evaluated in a single multi-time reachability pass, and
    /// distributed back to their measures.  Because the value-iteration
    /// trajectory does not depend on the set of requested times — only each
    /// time's Poisson mixture weights do — every returned point is bit-identical
    /// to what a separate [`query`](Self::query) for that measure would produce.
    ///
    /// Results are returned in the same order as `measures`.
    ///
    /// # Errors
    ///
    /// If any measure in the batch would fail individually, the whole batch
    /// fails with one of those errors and no partial result is returned.  The
    /// error conditions are exactly those of [`query`](Self::query) — in
    /// particular, NaN/infinite/negative mission times are rejected with
    /// [`Error::InvalidMissionTime`] while merging, before any numerical work
    /// starts — but when several measures are faulty the reported error is not
    /// necessarily the first in batch order: curve shapes and mission times
    /// are validated by the shared merged pass, before any scalar measure is
    /// evaluated.
    pub fn query_all(&self, measures: &[Measure]) -> Result<Vec<MeasureResult>> {
        // Merge the mission times of all time-bounded measures, remembering for
        // each measure which slots of the merged grid it reads back.
        let mut unique_times: Vec<f64> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let mut plans: Vec<Option<Vec<usize>>> = Vec::with_capacity(measures.len());
        for measure in measures {
            let times: &[f64] = match measure {
                Measure::Unreliability(t) => std::slice::from_ref(t),
                Measure::UnreliabilityCurve(times) => {
                    if times.is_empty() {
                        return Err(Error::EmptyCurve);
                    }
                    times
                }
                Measure::Unavailability | Measure::Mttf => {
                    plans.push(None);
                    continue;
                }
            };
            let slots = times
                .iter()
                .map(|&t| {
                    validate_mission_time(t)?;
                    Ok(*slot_of.entry(t.to_bits()).or_insert_with(|| {
                        unique_times.push(t);
                        unique_times.len() - 1
                    }))
                })
                .collect::<Result<Vec<usize>>>()?;
            plans.push(Some(slots));
        }

        let merged = if unique_times.is_empty() {
            None
        } else {
            Some(self.unreliability_points(&unique_times)?)
        };

        measures
            .iter()
            .zip(plans)
            .map(|(measure, plan)| match (measure, plan) {
                (Measure::Unavailability, None) => self.unavailability_point(),
                (Measure::Mttf, None) => self.mttf_point(),
                (_, Some(slots)) => {
                    let points = merged
                        .as_ref()
                        .expect("time-bounded measures imply a merged pass")
                        .points();
                    Ok(MeasureResult::new(
                        slots.iter().map(|&slot| points[slot]).collect(),
                    ))
                }
                (_, None) => unreachable!("plan shape follows the measure shape"),
            })
            .collect()
    }

    /// Convenience for [`Measure::Unreliability`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn unreliability(&self, mission_time: f64) -> Result<MeasureResult> {
        self.query(Measure::Unreliability(mission_time))
    }

    /// Convenience for [`Measure::UnreliabilityCurve`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn unreliability_curve(&self, mission_times: &[f64]) -> Result<MeasureResult> {
        self.query(Measure::UnreliabilityCurve(mission_times.to_vec()))
    }

    /// Convenience for [`Measure::Unavailability`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn unavailability(&self) -> Result<MeasureResult> {
        self.query(Measure::Unavailability)
    }

    /// Convenience for [`Measure::Mttf`].
    ///
    /// # Errors
    ///
    /// Same as [`query`](Self::query).
    pub fn mttf(&self) -> Result<MeasureResult> {
        self.query(Measure::Mttf)
    }

    fn unreliability_points(&self, times: &[f64]) -> Result<MeasureResult> {
        let epsilon = self.options.epsilon;
        match &self.backend {
            Backend::Monolithic { ctmc, goal } => {
                let values = ctmc.reachability_multi(goal, times, epsilon)?;
                Ok(MeasureResult::new(
                    times
                        .iter()
                        .zip(values)
                        .map(|(&t, v)| MeasurePoint::exact(Some(t), v))
                        .collect(),
                ))
            }
            Backend::Compositional {
                point_valued,
                upper,
                lower,
                ..
            } => {
                let uppers = upper.reachability_max_multi(times, epsilon)?;
                // When the model is deterministic and the optimistic/pessimistic
                // goal sets coincide, the minimising pass would redo the same
                // value iteration over the same CTMDP — skip it.
                let lowers = if *point_valued {
                    uppers.clone()
                } else {
                    lower.reachability_min_multi(times, epsilon)?
                };
                Ok(MeasureResult::new(
                    times
                        .iter()
                        .zip(lowers.into_iter().zip(uppers))
                        .map(|(&t, (lo, hi))| {
                            MeasurePoint::bounded(Some(t), point_valued.then_some(hi), (lo, hi))
                        })
                        .collect(),
                ))
            }
        }
    }

    fn unavailability_point(&self) -> Result<MeasureResult> {
        if !self.repairable {
            return Err(Error::Unsupported {
                message: "unavailability analysis needs at least one repairable basic event"
                    .to_owned(),
            });
        }
        match &self.backend {
            Backend::Monolithic { .. } => Err(Error::Unsupported {
                message: "the monolithic baseline only supports unreliability analysis".to_owned(),
            }),
            Backend::Compositional { has_repair, .. } => {
                if !has_repair {
                    return Err(Error::Unsupported {
                        message: "the top event never emits a repair signal".to_owned(),
                    });
                }
                let (ctmc, down) = self.tangible()?;
                let unavailability = steady_state_probability(ctmc, down, self.options.epsilon)?;
                Ok(MeasureResult::new(vec![MeasurePoint::exact(
                    None,
                    unavailability,
                )]))
            }
        }
    }

    fn mttf_point(&self) -> Result<MeasureResult> {
        let mttf = match &self.backend {
            Backend::Monolithic { ctmc, goal } => {
                markov::mttf::mean_time_to_absorption(ctmc, goal, self.options.epsilon)?
            }
            Backend::Compositional { .. } => {
                let (ctmc, down) = self.tangible()?;
                markov::mttf::mean_time_to_absorption(ctmc, down, self.options.epsilon)?
            }
        };
        Ok(MeasureResult::new(vec![MeasurePoint::exact(None, mttf)]))
    }

    /// The embedded CTMC of the closed model with its "down" labels, extracted on
    /// first use and cached for the session.
    fn tangible(&self) -> Result<(&Ctmc, &[bool])> {
        let Backend::Compositional {
            closed, tangible, ..
        } = &self.backend
        else {
            unreachable!("tangible() is only called on the compositional backend");
        };
        match tangible.get_or_init(|| extract_ctmc_with_label(closed, DOWN_PROP)) {
            Ok((ctmc, labels)) => Ok((ctmc, labels)),
            Err(e) => Err(e.clone()),
        }
    }

    /// The options the session was built with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// The analysis method backing this session.
    pub fn method(&self) -> Method {
        self.options.method
    }

    /// Statistics of the compositional aggregation run (absent for the monolithic
    /// method).  The statistics are computed during [`Analyzer::new`] and never
    /// change afterwards, however many queries are answered.
    pub fn aggregation_stats(&self) -> Option<&AggregationStats> {
        self.aggregation.as_ref()
    }

    /// Size of the final analysed model (the closed aggregated I/O-IMC or the
    /// monolithic CTMC).
    pub fn model_stats(&self) -> ModelStats {
        self.model_stats
    }

    /// How many times this session has run compositional aggregation: 1 for a
    /// compositional build, 0 for the monolithic baseline, for parametric
    /// instantiations *and* for sessions restored from bytes (a restored
    /// session carries the original run's [`aggregation_stats`] but ran no
    /// pipeline of its own — that is the entire point of persisting it) — and
    /// never more, regardless of how many queries were answered.
    ///
    /// [`aggregation_stats`]: Self::aggregation_stats
    pub fn aggregation_runs(&self) -> usize {
        usize::from(self.ran_aggregation)
    }

    /// Returns `true` if the final model contained immediate non-determinism, so
    /// unreliability queries report scheduler bounds instead of point values.
    pub fn is_nondeterministic(&self) -> bool {
        match &self.backend {
            Backend::Compositional { point_valued, .. } => !point_valued,
            Backend::Monolithic { .. } => false,
        }
    }

    /// The closed, minimised final I/O-IMC (compositional method only).
    pub fn final_model(&self) -> Option<&IoImc> {
        match &self.backend {
            Backend::Compositional { closed, .. } => Some(closed),
            Backend::Monolithic { .. } => None,
        }
    }

    /// The observable top-failure action of the cached model (compositional
    /// method only).
    pub fn top_failure(&self) -> Option<Action> {
        match &self.backend {
            Backend::Compositional { top_failure, .. } => Some(*top_failure),
            Backend::Monolithic { .. } => None,
        }
    }

    /// Serializes the session into the versioned binary container of the
    /// persistent model cache (see [`crate::store`]): the closed model, the
    /// can/must CTMDP pair with their goal vectors, the statistics and the
    /// options, framed with magic, format version and a payload checksum.
    ///
    /// The inverse is [`from_bytes`](Self::from_bytes); a restored session
    /// answers every query bit-identically to this one and reports
    /// [`aggregation_runs`](Self::aggregation_runs)` == 0`.
    pub fn to_bytes(&self) -> Vec<u8> {
        store::seal(
            store::Kind::Session,
            // A free-standing serialization is not bound to a DFT
            // fingerprint; the store writes its own frames with the real one.
            0,
            self.options.epsilon.to_bits(),
            &self.encode_payload(),
        )
    }

    /// Restores a session serialized with [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] when the bytes are truncated, corrupted, from
    /// a different format version, or decode to a model that fails
    /// validation.  Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Analyzer> {
        store::unseal(bytes, store::Kind::Session, None)
            .and_then(Analyzer::decode_payload)
            .map_err(|e| Error::Store {
                message: e.to_string(),
            })
    }

    /// The unframed payload body of [`to_bytes`](Self::to_bytes); the store
    /// frames it with the entry's real fingerprint.
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        store::encode_options(&self.options, &mut w);
        w.bool(self.repairable);
        match &self.aggregation {
            None => w.bool(false),
            Some(stats) => {
                w.bool(true);
                store::encode_aggregation_stats(stats, &mut w);
            }
        }
        store::encode_model_stats(self.model_stats, &mut w);
        match &self.backend {
            Backend::Compositional {
                closed,
                top_failure,
                has_repair,
                point_valued,
                upper,
                lower,
                tangible: _, // derived lazily and deterministically from `closed`
            } => {
                w.u8(0);
                w.str(top_failure.name());
                w.bool(*has_repair);
                w.bool(*point_valued);
                codec::encode_model(closed, &mut w);
                store::encode_ctmdp(upper, &mut w);
                store::encode_ctmdp(lower, &mut w);
            }
            Backend::Monolithic { ctmc, goal } => {
                w.u8(1);
                w.len_prefix(ctmc.num_states());
                w.len_prefix(ctmc.initial());
                let transitions = ctmc.transitions();
                w.len_prefix(transitions.len());
                for (from, to, rate) in transitions {
                    w.u32(from);
                    w.u32(to);
                    w.f64(rate);
                }
                store::encode_bools(goal, &mut w);
            }
        }
        w.into_bytes()
    }

    /// Decodes a payload produced by [`encode_payload`](Self::encode_payload),
    /// re-validating every embedded model.
    pub(crate) fn decode_payload(payload: &[u8]) -> DecodeResult<Analyzer> {
        let mut r = Reader::new(payload);
        let options = store::decode_options(&mut r)?;
        let repairable = r.bool()?;
        let aggregation = if r.bool()? {
            Some(store::decode_aggregation_stats(&mut r)?)
        } else {
            None
        };
        let model_stats = store::decode_model_stats(&mut r)?;
        let backend = match (r.u8()?, options.method) {
            (0, Method::Compositional) => {
                let top_failure = Action::new(&r.str()?);
                let has_repair = r.bool()?;
                let point_valued = r.bool()?;
                let closed = codec::decode_model::<f64>(&mut r)?;
                let upper = store::decode_ctmdp(&mut r)?;
                let lower = store::decode_ctmdp(&mut r)?;
                if upper.num_states() != closed.num_states()
                    || lower.num_states() != closed.num_states()
                {
                    return Err(DecodeError::new(
                        "CTMDP state counts disagree with the closed model",
                    ));
                }
                Backend::Compositional {
                    closed,
                    top_failure,
                    has_repair,
                    point_valued,
                    upper,
                    lower,
                    tangible: OnceLock::new(),
                }
            }
            (1, Method::Monolithic) => {
                let num_states = r.len_prefix(0)?;
                let initial = r.len_prefix(0)?;
                let n = r.len_prefix(16)?;
                let mut transitions = Vec::with_capacity(n);
                for _ in 0..n {
                    transitions.push((r.u32()?, r.u32()?, r.f64()?));
                }
                let ctmc = Ctmc::from_transitions(num_states, initial, &transitions)
                    .map_err(|e| DecodeError::new(format!("decoded CTMC is invalid: {e}")))?;
                let goal = store::decode_bools(&mut r)?;
                if goal.len() != num_states {
                    return Err(DecodeError::new("goal vector length mismatch"));
                }
                Backend::Monolithic { ctmc, goal }
            }
            (tag, method) => {
                return Err(DecodeError::new(format!(
                    "backend tag {tag} disagrees with method {method:?}"
                )))
            }
        };
        if !r.is_done() {
            return Err(DecodeError::new("trailing bytes after the session payload"));
        }
        Ok(Analyzer {
            options,
            repairable,
            aggregation,
            model_stats,
            backend,
            ran_aggregation: false,
        })
    }
}

/// A *parametric* analysis session: the symbolic-rate aggregation pipeline runs
/// once in [`ParametricAnalyzer::new`], and [`instantiate`](Self::instantiate)
/// then turns the cached parametric model into a numeric [`Analyzer`] for any
/// rate [`Valuation`] — by evaluating linear [`RateForm`](ioimc::RateForm)s,
/// **without** re-running conversion, composition or bisimulation minimisation.
///
/// This is the engine behind rate-sensitivity sweeps: a K-point sweep costs one
/// aggregation plus K cheap instantiations, where K independent
/// [`Analyzer::new`] calls would pay K full aggregations.  The aggregation lumps
/// states only when their cumulative rate *forms* coincide, which is sound for
/// every positive valuation at once; each instantiated session therefore
/// answers every [`Measure`] within numerical tolerance of (and typically
/// bit-identical to) a direct build on the equivalently re-rated tree.
///
/// # Example
///
/// ```
/// use dft::{DftBuilder, Dormancy};
/// use dft_core::engine::ParametricAnalyzer;
/// use dft_core::AnalysisOptions;
///
/// # fn main() -> Result<(), dft_core::Error> {
/// let mut b = DftBuilder::new();
/// let x = b.basic_event("X", 1.0, Dormancy::Hot)?;
/// let top = b.or_gate("Top", &[x])?;
/// let dft = b.build(top)?;
///
/// // Aggregate the *structure* once …
/// let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default())?;
/// // … then sweep the failure-rate scale without re-aggregating.
/// let valuations: Vec<_> = (1..=5)
///     .map(|i| parametric.params().scaled_valuation(i as f64))
///     .collect();
/// let sweep = parametric.sweep_unreliability(1.0, &valuations)?;
/// assert_eq!(sweep.len(), 5);
/// assert_eq!(parametric.aggregation_runs(), 1);
/// // Each point matches the closed form 1 - exp(-scale·t).
/// for (i, value) in sweep.values().enumerate() {
///     let exact = 1.0 - (-((i + 1) as f64)).exp();
///     assert!((value - exact).abs() < 1e-6);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParametricAnalyzer {
    options: AnalysisOptions,
    repairable: bool,
    aggregation: AggregationStats,
    /// `true` when this session executed the symbolic aggregation itself;
    /// `false` for sessions restored via [`from_bytes`](Self::from_bytes).
    ran_aggregation: bool,
    model_stats: ModelStats,
    /// The closed, minimised parametric model (rates are linear forms).
    closed: ParametricIoImc,
    top_failure: Action,
    has_repair: bool,
    params: ParamTable,
    /// Optimistic goal set ("can fire the top failure immediately") — depends
    /// only on the interactive structure, so it is shared by every valuation.
    can: Vec<bool>,
    /// Pessimistic goal set ("must fire the top failure immediately").
    must: Vec<bool>,
    point_valued: bool,
    /// The shared CTMDP structure of the closed model, lowered once on first
    /// sweep: batched sweeps evaluate rate forms straight into kernel lanes
    /// instead of instantiating one `Ctmdp` pair per valuation.
    sweep_template: OnceLock<SweepTemplate>,
}

/// The lowering [`ParametricAnalyzer`] caches for batched sweeps: the CTMDP
/// state vector with dummy Markovian rates (the structure), the rate form of
/// every Markovian edge in kernel edge order (state order, row order within a
/// state — exactly the walk of [`ctmdp_states_of`]), and the initial state.
#[derive(Debug)]
struct SweepTemplate {
    states: Vec<CtmdpState>,
    forms: Vec<ioimc::RateForm>,
    initial: usize,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ParametricAnalyzer>()
};

impl ParametricAnalyzer {
    /// Builds the parametric session: validates and converts the DFT with
    /// symbolic rates and runs compositional aggregation exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for [`Method::Monolithic`] options (the
    /// monolithic baseline has no parametric form) and propagates conversion
    /// and aggregation errors.
    pub fn new(dft: &Dft, options: AnalysisOptions) -> Result<ParametricAnalyzer> {
        if options.method != Method::Compositional {
            return Err(Error::Unsupported {
                message: "parametric sessions require the compositional method".to_owned(),
            });
        }
        let (community, params) = convert_parametric(dft)?;
        let model = aggregate_and_close(community)?;

        Ok(ParametricAnalyzer {
            options,
            repairable: dft.is_repairable(),
            aggregation: model.stats,
            ran_aggregation: true,
            model_stats: ModelStats::of(&model.closed),
            closed: model.closed,
            top_failure: model.top_failure,
            has_repair: model.has_repair,
            params,
            can: model.can,
            must: model.must,
            point_valued: model.point_valued,
            sweep_template: OnceLock::new(),
        })
    }

    /// Instantiates the cached parametric model for one rate assignment,
    /// returning a numeric [`Analyzer`] ready to answer queries.
    ///
    /// Only the linear rate forms are evaluated (in deterministic slot order);
    /// no conversion, composition or minimisation is repeated — the returned
    /// session reports [`aggregation_runs`](Analyzer::aggregation_runs) `== 0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidValuation`] when the valuation does not fit the
    /// model's [`ParamTable`] and propagates CTMDP construction errors.
    pub fn instantiate(&self, valuation: &Valuation) -> Result<Analyzer> {
        valuation.check_against(&self.params)?;
        let values = valuation.values();
        let closed = self.closed.map_rates(|form| form.eval(values));
        debug_assert!(closed.validate().is_ok());

        let ctmdp_states = ctmdp_states_of(&closed);
        let initial = closed.initial().index();
        let upper = Ctmdp::new(ctmdp_states.clone(), initial, self.can.clone())?;
        let lower = Ctmdp::new(ctmdp_states, initial, self.must.clone())?;

        Ok(Analyzer {
            options: self.options.clone(),
            repairable: self.repairable,
            // Instantiation runs no aggregation; the stats live on `self`.
            aggregation: None,
            model_stats: self.model_stats,
            backend: Backend::Compositional {
                closed,
                top_failure: self.top_failure,
                has_repair: self.has_repair,
                point_valued: self.point_valued,
                upper,
                lower,
                tangible: OnceLock::new(),
            },
            ran_aggregation: false,
        })
    }

    /// Evaluates one measure across a whole sweep of valuations with zero
    /// re-aggregations.
    ///
    /// Time-bounded measures ([`Measure::Unreliability`] and
    /// [`Measure::UnreliabilityCurve`]) run *batched*: every valuation
    /// becomes one lane of a [`RelaxKernel`], so the whole sweep costs one
    /// (or two, for non-deterministic models) traversal of the shared
    /// structure instead of one value iteration per point.  Each lane keeps
    /// its own uniformisation rate, so every result is bit-identical to
    /// [`instantiate`](Self::instantiate)` + `[`Analyzer::query`] on that
    /// valuation alone — and independent of the kernel's worker count.
    /// [`Measure::Unavailability`] and [`Measure::Mttf`] fall back to the
    /// per-point loop.
    ///
    /// # Errors
    ///
    /// Fails on the first invalid valuation or query error (see
    /// [`instantiate`](Self::instantiate) and [`Analyzer::query`]).  A sweep
    /// over zero valuations succeeds without validating the measure, like
    /// the per-point loop it replaces.
    pub fn sweep_query(&self, measure: &Measure, valuations: &[Valuation]) -> Result<RateSweep> {
        if valuations.is_empty() {
            return Ok(RateSweep {
                results: Vec::new(),
                instantiate_time: Duration::ZERO,
                query_time: Duration::ZERO,
            });
        }
        let times: &[f64] = match measure {
            Measure::Unreliability(t) => std::slice::from_ref(t),
            Measure::UnreliabilityCurve(times) => {
                if times.is_empty() {
                    return Err(Error::EmptyCurve);
                }
                times
            }
            Measure::Unavailability | Measure::Mttf => {
                return self.sweep_per_point(measure, valuations)
            }
        };
        self.sweep_batched(times, valuations)
    }

    /// The pre-kernel sweep loop: instantiate + query per valuation.  Still
    /// the path for measures the batched kernel does not cover.
    fn sweep_per_point(&self, measure: &Measure, valuations: &[Valuation]) -> Result<RateSweep> {
        let mut results = Vec::with_capacity(valuations.len());
        let mut instantiate_time = Duration::ZERO;
        let mut query_time = Duration::ZERO;
        for valuation in valuations {
            let started = Instant::now();
            let session = self.instantiate(valuation)?;
            instantiate_time += started.elapsed();
            let started = Instant::now();
            results.push(session.query(measure)?);
            query_time += started.elapsed();
        }
        Ok(RateSweep {
            results,
            instantiate_time,
            query_time,
        })
    }

    /// The batched sweep: K valuations become K lanes of one [`RelaxKernel`]
    /// built from the cached [`SweepTemplate`], and one value-iteration pass
    /// per goal set answers every lane and every time bound at once.
    fn sweep_batched(&self, times: &[f64], valuations: &[Valuation]) -> Result<RateSweep> {
        // Merge duplicate time bounds in first-occurrence order — the exact
        // plan `Analyzer::query_all` builds — so each lane reads the same
        // merged grid a per-point query would.
        let mut unique_times: Vec<f64> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        let slots = times
            .iter()
            .map(|&t| {
                validate_mission_time(t)?;
                Ok(*slot_of.entry(t.to_bits()).or_insert_with(|| {
                    unique_times.push(t);
                    unique_times.len() - 1
                }))
            })
            .collect::<Result<Vec<usize>>>()?;

        let started = Instant::now();
        let template = self.sweep_template();
        let lanes = valuations.len();
        let mut lane_rates = vec![0.0f64; template.forms.len() * lanes];
        for (k, valuation) in valuations.iter().enumerate() {
            valuation.check_against(&self.params)?;
            let values = valuation.values();
            // Same forms, same eval, same slot order as `map_rates` inside
            // `instantiate` — lane k's rates carry identical bits.
            for (e, form) in template.forms.iter().enumerate() {
                lane_rates[e * lanes + k] = form.eval(values);
            }
        }
        let kernel = RelaxKernel::from_template(&template.states, &lane_rates, lanes)?;
        let instantiate_time = started.elapsed();

        let started = Instant::now();
        let epsilon = self.options.epsilon;
        let workers = kernel.auto_workers();
        let uppers = kernel.reachability(
            template.initial,
            &self.can,
            &unique_times,
            epsilon,
            true,
            workers,
        )?;
        let lowers = if self.point_valued {
            uppers.clone()
        } else {
            kernel.reachability(
                template.initial,
                &self.must,
                &unique_times,
                epsilon,
                false,
                workers,
            )?
        };
        let results = (0..lanes)
            .map(|k| {
                let points: Vec<MeasurePoint> = unique_times
                    .iter()
                    .enumerate()
                    .map(|(slot, &t)| {
                        let hi = uppers[slot * lanes + k];
                        let lo = lowers[slot * lanes + k];
                        MeasurePoint::bounded(Some(t), self.point_valued.then_some(hi), (lo, hi))
                    })
                    .collect();
                MeasureResult::new(slots.iter().map(|&slot| points[slot]).collect())
            })
            .collect();
        let query_time = started.elapsed();
        Ok(RateSweep {
            results,
            instantiate_time,
            query_time,
        })
    }

    /// The cached structure lowering behind [`sweep_batched`](Self::sweep_batched).
    fn sweep_template(&self) -> &SweepTemplate {
        self.sweep_template.get_or_init(|| {
            let mut forms = Vec::new();
            let states = self
                .closed
                .states()
                .map(|s| {
                    let immediate: Vec<u32> = self
                        .closed
                        .interactive_from(s)
                        .iter()
                        .filter(|t| t.label.is_immediate())
                        .map(|t| t.to.index() as u32)
                        .collect();
                    if !immediate.is_empty() {
                        CtmdpState::Immediate(immediate)
                    } else {
                        CtmdpState::Markovian(
                            self.closed
                                .markovian_from(s)
                                .iter()
                                .map(|t| {
                                    forms.push(t.rate.clone());
                                    // The rate is a template placeholder; the
                                    // kernel takes real rates per lane.
                                    (t.to.index() as u32, 1.0)
                                })
                                .collect(),
                        )
                    }
                })
                .collect();
            SweepTemplate {
                states,
                forms,
                initial: self.closed.initial().index(),
            }
        })
    }

    /// Convenience sweep of [`Measure::Unreliability`] at mission time `t`: the
    /// query surface of a rate-sensitivity study (one unreliability value per
    /// valuation, one aggregation total).
    ///
    /// # Errors
    ///
    /// Same as [`sweep_query`](Self::sweep_query).
    pub fn sweep_unreliability(&self, t: f64, valuations: &[Valuation]) -> Result<RateSweep> {
        self.sweep_query(&Measure::Unreliability(t), valuations)
    }

    /// The parameter slots of the model: what each slot means, its base value,
    /// and the [`Valuation`] constructors.
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// The valuation reproducing the original tree's rates.
    pub fn base_valuation(&self) -> Valuation {
        self.params.base_valuation()
    }

    /// The options the session was built with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Statistics of the (single) compositional aggregation run.
    pub fn aggregation_stats(&self) -> &AggregationStats {
        &self.aggregation
    }

    /// Size of the closed parametric model.
    pub fn model_stats(&self) -> ModelStats {
        self.model_stats
    }

    /// How many times this session has run compositional aggregation: 1 for a
    /// freshly built session — however many valuations were instantiated or
    /// swept — and 0 for a session restored via
    /// [`from_bytes`](Self::from_bytes), which reuses the original builder's
    /// aggregation instead of running its own.
    pub fn aggregation_runs(&self) -> usize {
        usize::from(self.ran_aggregation)
    }

    /// Returns `true` if the parametric model contains immediate
    /// non-determinism, so instantiated sessions report scheduler bounds.
    pub fn is_nondeterministic(&self) -> bool {
        !self.point_valued
    }

    /// The closed, minimised parametric I/O-IMC.
    pub fn final_model(&self) -> &ParametricIoImc {
        &self.closed
    }

    /// The observable top-failure action of the cached model.
    pub fn top_failure(&self) -> Action {
        self.top_failure
    }

    /// Serializes the parametric session into the versioned binary container
    /// of the persistent model cache (see [`crate::store`]): the closed
    /// parametric quotient (rates as sparse linear forms), the
    /// [`ParamTable`], the precomputed can/must goal sets, statistics and
    /// options.
    ///
    /// The inverse is [`from_bytes`](Self::from_bytes); a restored session
    /// instantiates every valuation bit-identically to this one and reports
    /// [`aggregation_runs`](Self::aggregation_runs)` == 0`.
    pub fn to_bytes(&self) -> Vec<u8> {
        store::seal(
            store::Kind::Parametric,
            0,
            self.options.epsilon.to_bits(),
            &self.encode_payload(),
        )
    }

    /// Restores a session serialized with [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] on truncated, corrupted or stale input; never
    /// panics on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<ParametricAnalyzer> {
        store::unseal(bytes, store::Kind::Parametric, None)
            .and_then(ParametricAnalyzer::decode_payload)
            .map_err(|e| Error::Store {
                message: e.to_string(),
            })
    }

    /// The unframed payload body of [`to_bytes`](Self::to_bytes).
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        store::encode_options(&self.options, &mut w);
        w.bool(self.repairable);
        store::encode_aggregation_stats(&self.aggregation, &mut w);
        store::encode_model_stats(self.model_stats, &mut w);
        w.str(self.top_failure.name());
        w.bool(self.has_repair);
        w.bool(self.point_valued);
        w.len_prefix(self.params.len());
        for slot in self.params.slots() {
            w.str(&slot.element);
            w.u8(match slot.kind {
                ParamKind::Failure => 0,
                ParamKind::Repair => 1,
            });
            w.f64(slot.base);
        }
        codec::encode_model(&self.closed, &mut w);
        store::encode_bools(&self.can, &mut w);
        store::encode_bools(&self.must, &mut w);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`encode_payload`](Self::encode_payload).
    pub(crate) fn decode_payload(payload: &[u8]) -> DecodeResult<ParametricAnalyzer> {
        let mut r = Reader::new(payload);
        let options = store::decode_options(&mut r)?;
        if options.method != Method::Compositional {
            return Err(DecodeError::new(
                "parametric sessions are always compositional",
            ));
        }
        let repairable = r.bool()?;
        let aggregation = store::decode_aggregation_stats(&mut r)?;
        let model_stats = store::decode_model_stats(&mut r)?;
        let top_failure = Action::new(&r.str()?);
        let has_repair = r.bool()?;
        let point_valued = r.bool()?;
        let num_slots = r.len_prefix(10)?;
        let mut params = ParamTable::default();
        for _ in 0..num_slots {
            let element = r.str()?;
            let kind = match r.u8()? {
                0 => ParamKind::Failure,
                1 => ParamKind::Repair,
                other => {
                    return Err(DecodeError::new(format!(
                        "invalid parameter kind tag {other}"
                    )))
                }
            };
            let base = r.f64()?;
            params.push(&element, kind, base);
        }
        let closed = codec::decode_model::<ioimc::RateForm>(&mut r)?;
        // Every rate form must stay inside the decoded parameter table —
        // `RateForm::eval` indexes the valuation unchecked at instantiation
        // time, so an out-of-range slot in a corrupted entry must die here.
        for t in closed.markovian() {
            if let Some(max_slot) = t.rate.max_slot() {
                if max_slot as usize >= params.len() {
                    return Err(DecodeError::new(format!(
                        "rate form references slot {max_slot} but the table has {} slots",
                        params.len()
                    )));
                }
            }
        }
        let can = store::decode_bools(&mut r)?;
        let must = store::decode_bools(&mut r)?;
        if can.len() != closed.num_states() || must.len() != closed.num_states() {
            return Err(DecodeError::new(
                "goal-set lengths disagree with the closed model",
            ));
        }
        if !r.is_done() {
            return Err(DecodeError::new(
                "trailing bytes after the parametric payload",
            ));
        }
        Ok(ParametricAnalyzer {
            options,
            repairable,
            aggregation,
            ran_aggregation: false,
            model_stats,
            closed,
            top_failure,
            has_repair,
            params,
            can,
            must,
            point_valued,
            sweep_template: OnceLock::new(),
        })
    }
}

/// The result of a rate sweep: one [`MeasureResult`] per valuation, in request
/// order, plus the wall-clock split between instantiation and querying.
#[derive(Debug, Clone)]
pub struct RateSweep {
    results: Vec<MeasureResult>,
    instantiate_time: Duration,
    query_time: Duration,
}

impl RateSweep {
    /// One result per valuation, in the order the valuations were passed.
    pub fn results(&self) -> &[MeasureResult] {
        &self.results
    }

    /// The scalar values of all results, in valuation order (see
    /// [`MeasureResult::value`] for the non-determinism convention).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.results.iter().map(MeasureResult::value)
    }

    /// Number of valuations evaluated.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Returns `true` for a sweep over no valuations.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Total time spent evaluating rate forms and building CTMDPs.
    pub fn instantiate_time(&self) -> Duration {
        self.instantiate_time
    }

    /// Total time spent answering the measure queries.
    pub fn query_time(&self) -> Duration {
        self.query_time
    }
}

/// Rejects mission times no transient analysis can answer — NaN, infinite or
/// negative — with a typed error at the query boundary, so they never reach
/// the uniformisation routines (which would report them as an untyped
/// numerical [`markov::Error::InvalidValue`] from deep inside
/// `Ctmc::transient`).
fn validate_mission_time(t: f64) -> Result<()> {
    if t.is_finite() && t >= 0.0 {
        Ok(())
    } else {
        Err(Error::InvalidMissionTime { value: t })
    }
}

/// Converts a closed I/O-IMC into the CTMDP state vector used by the `markov`
/// crate: urgent states offer their immediate successors as a non-deterministic
/// choice, all other states race their Markovian transitions.
fn ctmdp_states_of(closed: &IoImc) -> Vec<CtmdpState> {
    closed
        .states()
        .map(|s| {
            let immediate: Vec<u32> = closed
                .interactive_from(s)
                .iter()
                .filter(|t| t.label.is_immediate())
                .map(|t| t.to.index() as u32)
                .collect();
            if !immediate.is_empty() {
                CtmdpState::Immediate(immediate)
            } else {
                CtmdpState::Markovian(
                    closed
                        .markovian_from(s)
                        .iter()
                        .map(|t| (t.to.index() as u32, t.rate))
                        .collect(),
                )
            }
        })
        .collect()
}

/// Eliminates the remaining immediate (vanishing) states of a closed, deterministic
/// I/O-IMC and returns the embedded CTMC together with a boolean label vector for
/// the given atomic proposition.
///
/// # Errors
///
/// Returns [`Error::Ioimc`] wrapping a non-determinism error if some vanishing
/// state has more than one immediate successor, and [`Error::Unsupported`] if an
/// immediate cycle (divergence) survives into the closed model — such a chain has
/// no embedded CTMC.
fn extract_ctmc_with_label(closed: &IoImc, prop: &str) -> Result<(Ctmc, Vec<bool>)> {
    check_deterministic(closed).map_err(Error::from)?;
    let prop_id = closed.prop(prop);

    // Resolve each state to the non-urgent state its immediate chain ends in; an
    // immediate cycle never reaches one, which surfaces as an error rather than a
    // panic further down.
    let resolve = |start: ioimc::StateId| -> Result<ioimc::StateId> {
        let mut current = start;
        let mut hops = 0;
        loop {
            let next = closed
                .interactive_from(current)
                .iter()
                .find(|t| t.label.is_immediate())
                .map(|t| t.to);
            match next {
                Some(n) => {
                    current = n;
                    hops += 1;
                    if hops > closed.num_states() {
                        return Err(Error::Unsupported {
                            message: format!(
                                "the closed model diverges: state {} starts a cycle of \
                                 immediate transitions, so no embedded CTMC exists",
                                start.index()
                            ),
                        });
                    }
                }
                None => return Ok(current),
            }
        }
    };

    // Tangible states (no outgoing immediate transition) form the CTMC.
    let tangible: Vec<ioimc::StateId> = closed.states().filter(|&s| !closed.is_urgent(s)).collect();
    let index_of = |s: ioimc::StateId| -> u32 {
        tangible
            .binary_search(&s)
            .expect("resolve() only returns non-urgent states, which are all tangible")
            as u32
    };

    let mut transitions: Vec<(u32, u32, f64)> = Vec::new();
    for &s in &tangible {
        for t in closed.markovian_from(s) {
            transitions.push((index_of(s), index_of(resolve(t.to)?), t.rate));
        }
    }
    let initial = index_of(resolve(closed.initial())?) as usize;
    let ctmc = Ctmc::from_transitions(tangible.len(), initial, &transitions)?;
    let labels = tangible
        .iter()
        .map(|&s| prop_id.map(|p| closed.has_prop(s, p)).unwrap_or(false))
        .collect();
    Ok((ctmc, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn exp_cdf(rate: f64, t: f64) -> f64 {
        1.0 - (-rate * t).exp()
    }

    #[test]
    fn one_session_serves_every_measure() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("en_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("en_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();

        // Erlang(2, 1) failure time.
        let t = 1.0;
        let r = analyzer.unreliability(t).unwrap();
        let exact = 1.0 - (-t).exp() * (1.0 + t);
        assert!((r.value() - exact).abs() < 1e-6, "{} vs {exact}", r.value());
        assert!(!r.is_nondeterministic());

        let mttf = analyzer.mttf().unwrap();
        assert!((mttf.value() - 2.0).abs() < 1e-6, "{}", mttf.value());

        assert!(analyzer.unavailability().is_err(), "not repairable");
        assert_eq!(analyzer.aggregation_runs(), 1);
        assert!(analyzer.aggregation_stats().is_some());
        assert!(analyzer.model_stats().states > 0);
        assert!(analyzer.final_model().is_some());
        assert!(analyzer.top_failure().is_some());
    }

    #[test]
    fn curve_points_match_single_time_queries_exactly() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en2_X", 0.7, Dormancy::Hot).unwrap();
        let y = b.basic_event("en2_Y", 1.3, Dormancy::Hot).unwrap();
        let top = b.and_gate("en2_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();

        let times = [0.1, 0.5, 1.0, 2.0, 4.0];
        let curve = analyzer.unreliability_curve(&times).unwrap();
        assert_eq!(curve.len(), times.len());
        for (point, &t) in curve.points().iter().zip(&times) {
            assert_eq!(point.time(), Some(t));
            let single = analyzer.unreliability(t).unwrap();
            assert_eq!(point.value().to_bits(), single.value().to_bits());
            let exact = exp_cdf(0.7, t) * exp_cdf(1.3, t);
            assert!((point.value() - exact).abs() < 1e-7);
        }
    }

    #[test]
    fn monolithic_sessions_answer_curves_too() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en3_X", 1.0, Dormancy::Hot).unwrap();
        let top = b.or_gate("en3_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        assert_eq!(analyzer.aggregation_runs(), 0);
        assert!(analyzer.aggregation_stats().is_none());
        let curve = analyzer.unreliability_curve(&[0.5, 1.0]).unwrap();
        for (point, t) in curve.points().iter().zip([0.5, 1.0]) {
            assert!((point.value() - exp_cdf(1.0, t)).abs() < 1e-7);
        }
        assert!(analyzer.unavailability().is_err());
        assert!((analyzer.mttf().unwrap().value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn repairable_sessions_serve_unavailability() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("en4_X", 1.0, Dormancy::Hot, 9.0)
            .unwrap();
        let top = b.or_gate("en4_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let u = analyzer.unavailability().unwrap();
        assert!((u.value() - 0.1).abs() < 1e-6, "{}", u.value());
        assert!(!u.is_nondeterministic());
        // The same session also answers unreliability and MTTF queries.
        let r = analyzer.unreliability(1.0).unwrap();
        assert!(r.value() > 0.0 && r.value() < 1.0);
        let mttf = analyzer.mttf().unwrap();
        assert!((mttf.value() - 1.0).abs() < 1e-6, "{}", mttf.value());
        assert_eq!(analyzer.aggregation_runs(), 1);
    }

    fn bits_of(result: &MeasureResult) -> Vec<(Option<u64>, u64, u64, u64)> {
        result
            .points()
            .iter()
            .map(|p| {
                (
                    p.time().map(f64::to_bits),
                    p.value().to_bits(),
                    p.bounds().0.to_bits(),
                    p.bounds().1.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn sessions_round_trip_bit_identically_through_bytes() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("en6_P", 1.0, Dormancy::Hot).unwrap();
        let s = b.basic_event("en6_S", 1.0, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en6_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let built = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();

        assert_eq!(restored.aggregation_runs(), 0, "no pipeline ran on restore");
        assert_eq!(built.aggregation_runs(), 1);
        let built_stats = built.aggregation_stats().unwrap();
        let restored_stats = restored.aggregation_stats().unwrap();
        assert_eq!(restored_stats.peak, built_stats.peak);
        assert_eq!(restored_stats.steps.len(), built_stats.steps.len());
        assert_eq!(restored.model_stats(), built.model_stats());

        let measures = [
            Measure::Unreliability(1.0),
            Measure::curve([0.25, 0.5, 1.0, 2.0]),
            Measure::Mttf,
        ];
        for measure in &measures {
            let a = built.query(measure).unwrap();
            let b = restored.query(measure).unwrap();
            assert_eq!(bits_of(&a), bits_of(&b), "{measure:?} must round-trip");
        }
    }

    #[test]
    fn monolithic_sessions_round_trip_too() {
        let mut b = DftBuilder::new();
        let x = b.basic_event("en7_X", 0.7, Dormancy::Hot).unwrap();
        let y = b.basic_event("en7_Y", 1.3, Dormancy::Hot).unwrap();
        let top = b.and_gate("en7_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let built = Analyzer::new(
            &dft,
            AnalysisOptions {
                method: Method::Monolithic,
                ..AnalysisOptions::default()
            },
        )
        .unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();
        assert_eq!(restored.method(), Method::Monolithic);
        let a = built.query(Measure::curve([0.5, 1.0])).unwrap();
        let b = restored.query(Measure::curve([0.5, 1.0])).unwrap();
        assert_eq!(bits_of(&a), bits_of(&b));
        let a = built.mttf().unwrap();
        let b = restored.mttf().unwrap();
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn repairable_sessions_round_trip_with_unavailability() {
        let mut b = DftBuilder::new();
        let x = b
            .repairable_basic_event("en8_X", 1.0, Dormancy::Hot, 9.0)
            .unwrap();
        let top = b.or_gate("en8_Top", &[x]).unwrap();
        let dft = b.build(top).unwrap();
        let built = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = Analyzer::from_bytes(&built.to_bytes()).unwrap();
        // Unavailability exercises the lazily extracted tangible CTMC, which
        // the restored session re-derives from the decoded closed model.
        let a = built.unavailability().unwrap();
        let b = restored.unavailability().unwrap();
        assert_eq!(a.value().to_bits(), b.value().to_bits());
    }

    #[test]
    fn parametric_sessions_round_trip_bit_identically_through_bytes() {
        let mut b = DftBuilder::new();
        let p = b.basic_event("en9_P", 0.8, Dormancy::Hot).unwrap();
        let s = b.basic_event("en9_S", 1.2, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en9_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let built = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        let restored = ParametricAnalyzer::from_bytes(&built.to_bytes()).unwrap();

        assert_eq!(restored.aggregation_runs(), 0);
        assert_eq!(built.aggregation_runs(), 1);
        assert_eq!(restored.params(), built.params());
        assert_eq!(restored.model_stats(), built.model_stats());

        for scale in [0.5, 1.0, 2.5] {
            let valuation = built.params().scaled_valuation(scale);
            let a = built.instantiate(&valuation).unwrap();
            let b = restored.instantiate(&valuation).unwrap();
            assert_eq!(b.aggregation_runs(), 0);
            let qa = a.query(Measure::curve([0.5, 1.0])).unwrap();
            let qb = b.query(Measure::curve([0.5, 1.0])).unwrap();
            assert_eq!(bits_of(&qa), bits_of(&qb));
        }
    }

    #[test]
    fn batched_sweeps_match_per_point_queries_bit_for_bit() {
        // A nondeterministic model (FDEP trigger under a PAND) exercises both
        // the optimistic and pessimistic kernel passes of the batched sweep.
        let mut b = DftBuilder::new();
        let t = b.basic_event("en11_T", 0.5, Dormancy::Hot).unwrap();
        let x = b.basic_event("en11_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("en11_Y", 1.3, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("en11_F", t, &[x, y]).unwrap();
        let top = b.pand_gate("en11_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert!(parametric.is_nondeterministic());

        let valuations: Vec<Valuation> = [0.6, 1.0, 1.7]
            .iter()
            .map(|&s| parametric.params().scaled_valuation(s))
            .collect();
        // A curve with a duplicate time bound exercises the merged-grid plan.
        let measure = Measure::curve([0.4, 1.0, 0.4, 2.0]);
        for cap in [1usize, 2, 4] {
            markov::kernel::set_max_workers(cap);
            let sweep = parametric.sweep_query(&measure, &valuations).unwrap();
            assert_eq!(sweep.len(), valuations.len());
            for (valuation, result) in valuations.iter().zip(sweep.results()) {
                let reference = parametric
                    .instantiate(valuation)
                    .unwrap()
                    .query(measure.clone())
                    .unwrap();
                assert_eq!(bits_of(result), bits_of(&reference), "cap {cap}");
            }
        }
        markov::kernel::set_max_workers(0);

        // An empty sweep stays a no-op, and an empty curve still errors when
        // there is at least one valuation to evaluate it for.
        assert!(parametric.sweep_query(&measure, &[]).unwrap().is_empty());
        assert!(parametric
            .sweep_query(&Measure::curve([]), &valuations)
            .is_err());
        assert!(parametric
            .sweep_query(&Measure::curve([]), &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn point_valued_sweeps_batch_through_one_pass() {
        // A deterministic model takes the point-valued shortcut (the lower
        // pass is the upper pass); results must still match per-point queries.
        let mut b = DftBuilder::new();
        let p = b.basic_event("en12_P", 0.8, Dormancy::Hot).unwrap();
        let s = b.basic_event("en12_S", 1.2, Dormancy::Cold).unwrap();
        let top = b.spare_gate("en12_Top", &[p, s]).unwrap();
        let dft = b.build(top).unwrap();
        let parametric = ParametricAnalyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert!(!parametric.is_nondeterministic());

        let valuations: Vec<Valuation> = [1.0, 1.5]
            .iter()
            .map(|&s| parametric.params().scaled_valuation(s))
            .collect();
        let sweep = parametric.sweep_unreliability(0.9, &valuations).unwrap();
        for (valuation, result) in valuations.iter().zip(sweep.results()) {
            assert!(!result.is_nondeterministic());
            let reference = parametric
                .instantiate(valuation)
                .unwrap()
                .unreliability(0.9)
                .unwrap();
            assert_eq!(bits_of(result), bits_of(&reference));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage_without_panicking() {
        assert!(Analyzer::from_bytes(&[]).is_err());
        assert!(Analyzer::from_bytes(b"not a store entry at all").is_err());
        assert!(ParametricAnalyzer::from_bytes(&[0xff; 64]).is_err());

        let mut bt = DftBuilder::new();
        let x = bt.basic_event("en10_X", 1.0, Dormancy::Hot).unwrap();
        let top = bt.or_gate("en10_Top", &[x]).unwrap();
        let dft = bt.build(top).unwrap();
        let bytes = Analyzer::new(&dft, AnalysisOptions::default())
            .unwrap()
            .to_bytes();
        // Session bytes are not parametric bytes (the kind tag differs) …
        assert!(ParametricAnalyzer::from_bytes(&bytes).is_err());
        // … every truncation fails cleanly …
        for cut in [0, 4, 9, 17, 33, bytes.len() - 1] {
            assert!(Analyzer::from_bytes(&bytes[..cut]).is_err());
        }
        // … and any flipped payload byte trips the checksum.
        for i in (41..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Analyzer::from_bytes(&bad).is_err());
        }
    }

    #[test]
    fn nondeterministic_models_report_bounds() {
        // FDEP trigger feeding both inputs of a PAND (Figure 6a): the failure
        // order is unresolved, so unreliability is an interval.
        let mut b = DftBuilder::new();
        let t = b.basic_event("en5_T", 0.5, Dormancy::Hot).unwrap();
        let x = b.basic_event("en5_X", 1.0, Dormancy::Hot).unwrap();
        let y = b.basic_event("en5_Y", 1.0, Dormancy::Hot).unwrap();
        let _f = b.fdep_gate("en5_F", t, &[x, y]).unwrap();
        let top = b.pand_gate("en5_Top", &[x, y]).unwrap();
        let dft = b.build(top).unwrap();
        let analyzer = Analyzer::new(&dft, AnalysisOptions::default()).unwrap();
        assert!(analyzer.is_nondeterministic());
        let r = analyzer.unreliability(1.0).unwrap();
        assert!(r.is_nondeterministic());
        let (lo, hi) = r.bounds();
        assert!(lo < hi, "bounds ({lo}, {hi}) should be a proper interval");
        // MTTF needs a CTMC; the CTMDP must be rejected, not mis-analysed.
        assert!(analyzer.mttf().is_err());
    }
}
