//! The portfolio front end: a thread-safe, cache-backed service over many
//! [`Analyzer`] sessions.
//!
//! The [`Analyzer`] exploits the paper's economics
//! *within* one tree: model construction is expensive, queries against the built
//! model are cheap.  Real workloads analyze whole portfolios of DFT variants —
//! fleets of similar systems, parameter studies, repeated submissions of the
//! same design — where many trees are structurally identical and should never
//! pay aggregation twice.  [`AnalysisService`] extends the same economics
//! *across* trees:
//!
//! * **Batching** — [`run_batch`](AnalysisService::run_batch) accepts a slice of
//!   [`AnalysisJob`]s (each a DFT, its [`AnalysisOptions`] and a list of owned
//!   [`Measure`]s) and executes them on a [`std::thread::scope`] worker pool.
//! * **Caching** — built sessions are shared through an LRU cache of
//!   `Arc<Analyzer>` keyed by [`Dft::fingerprint`] (plus the analysis method and
//!   epsilon).  A batch over N copies of one tree runs aggregation exactly
//!   once; the other N−1 jobs are cache hits that go straight to the query
//!   phase.
//! * **Exactly-once builds under concurrency** — each cache entry is an
//!   `Arc<OnceLock<…>>`: when two workers race for the same fingerprint, one
//!   builds while the other blocks on the lock and then shares the result,
//!   instead of building a duplicate model.
//! * **Determinism** — workers only share immutable `Arc<Analyzer>` sessions,
//!   so every job's results are bit-identical to what a sequential
//!   [`Analyzer`] run over the same tree would produce, whatever the worker
//!   count or job interleaving.
//!
//! # Example
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
//! use dft_core::{AnalysisOptions, Measure};
//!
//! fn variant(rate: f64) -> dft::Dft {
//!     let mut b = DftBuilder::new();
//!     let p = b.basic_event("P", rate, Dormancy::Hot).unwrap();
//!     let s = b.basic_event("S", rate, Dormancy::Cold).unwrap();
//!     let top = b.spare_gate("Top", &[p, s]).unwrap();
//!     b.build(top).unwrap()
//! }
//!
//! let service = AnalysisService::new(ServiceOptions::default());
//! // Six jobs over two distinct structures: only two models are ever built.
//! let jobs: Vec<AnalysisJob> = (0..6)
//!     .map(|i| AnalysisJob::new(
//!         variant(if i % 2 == 0 { 1.0 } else { 2.0 }),
//!         AnalysisOptions::default(),
//!         vec![Measure::curve([0.5, 1.0]), Measure::Mttf],
//!     ))
//!     .collect();
//! let report = service.run_batch(&jobs);
//! assert_eq!(report.stats.cache_misses, 2);
//! assert_eq!(report.stats.cache_hits, 4);
//! assert_eq!(report.stats.aggregation_runs, 2);
//! for job in &report.jobs {
//!     let results = job.results.as_ref().unwrap();
//!     assert_eq!(results.len(), 2);
//! }
//! ```

use crate::analysis::{AnalysisOptions, Method};
use crate::engine::{Analyzer, ParametricAnalyzer};
use crate::parametric::Valuation;
use crate::query::{Measure, MeasureResult};
use crate::{Error, Result};
use dft::Dft;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// One unit of work for the service: analyze one DFT for a list of measures.
///
/// Jobs own all their data (`Measure` holds curve times in a `Vec<f64>`), so a
/// job is `Send + 'static` and can be queued, cloned and shipped to worker
/// threads freely.
#[derive(Debug, Clone)]
pub struct AnalysisJob {
    /// The tree to analyze.
    pub dft: Dft,
    /// Analysis options; the method and epsilon take part in the cache key, so
    /// jobs with different options never share a session.
    pub options: AnalysisOptions,
    /// The measures to evaluate, answered in one
    /// [`query_all`](Analyzer::query_all) pass against the (possibly cached)
    /// session.
    pub measures: Vec<Measure>,
}

impl AnalysisJob {
    /// Bundles a DFT, its options and the requested measures into a job.
    pub fn new(dft: Dft, options: AnalysisOptions, measures: Vec<Measure>) -> AnalysisJob {
        AnalysisJob {
            dft,
            options,
            measures,
        }
    }
}

/// Tuning knobs of an [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads per [`run_batch`](AnalysisService::run_batch) call.
    ///
    /// `0` (the default) means one worker per available CPU core
    /// ([`std::thread::available_parallelism`]); the pool is additionally capped
    /// at the batch size, so small batches never spawn idle threads.
    pub workers: usize,
    /// Maximum number of cached `Arc<Analyzer>` sessions; the least recently
    /// used session is evicted beyond this.  `0` means unbounded.
    pub cache_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            workers: 0,
            cache_capacity: 128,
        }
    }
}

/// Sessions are shared per structure *and* per analysis configuration: the same
/// tree analysed monolithically or with a different epsilon is a different
/// model (epsilon drives every numerical query on the session).
///
/// Sessions *instantiated from a parametric model* additionally carry the
/// valuation fingerprint: their structure key is the rate-blind
/// [`Dft::structural_fingerprint`] (the valuation fully determines the rates),
/// so a fleet of rate variants shares one parametric model and each distinct
/// valuation one instantiated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    method: Method,
    epsilon_bits: u64,
    /// `Some(valuation fingerprint)` for instantiated parametric sessions,
    /// `None` for directly built ones.
    valuation: Option<u64>,
}

impl CacheKey {
    fn new(dft: &Dft, options: &AnalysisOptions) -> CacheKey {
        CacheKey {
            fingerprint: dft.fingerprint(),
            method: options.method,
            epsilon_bits: options.epsilon.to_bits(),
            valuation: None,
        }
    }

    fn instance(structural: u64, options: &AnalysisOptions, valuation: &Valuation) -> CacheKey {
        CacheKey {
            fingerprint: structural,
            method: options.method,
            epsilon_bits: options.epsilon.to_bits(),
            valuation: Some(valuation.fingerprint()),
        }
    }
}

/// Parametric models are shared per rate-blind structure and analysis
/// configuration.  The method takes part even though only the compositional
/// method can ever *succeed*: a monolithic sweep caches its deterministic
/// `Unsupported` error under its own key instead of poisoning the
/// compositional entry for the same structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ParamCacheKey {
    structural_fingerprint: u64,
    method: Method,
    epsilon_bits: u64,
}

/// A cache slot: `OnceLock` guarantees the build runs exactly once even when
/// several workers race for the same key — latecomers block until the winner's
/// session (or its error, which is equally deterministic) is available.
type Slot = Arc<OnceLock<std::result::Result<Arc<Analyzer>, Error>>>;

/// The parametric-model counterpart of [`Slot`].
type ParamSlot = Arc<OnceLock<std::result::Result<Arc<ParametricAnalyzer>, Error>>>;

#[derive(Debug)]
struct CacheEntry {
    slot: Slot,
    last_used: u64,
}

#[derive(Debug)]
struct ParamCacheEntry {
    slot: ParamSlot,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Cache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Parametric (symbolic-rate) models, keyed by rate-blind structure.
    param_entries: HashMap<ParamCacheKey, ParamCacheEntry>,
    /// Monotonic use counter backing the LRU order (no wall clock involved, so
    /// the order is deterministic under a single worker).
    tick: u64,
}

/// Cumulative cache counters of a service, across all batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs that found their session already built (or being built).
    pub hits: usize,
    /// Jobs that had to build their session.
    pub misses: usize,
    /// Sessions dropped to respect [`ServiceOptions::cache_capacity`].
    pub evictions: usize,
    /// Sessions currently cached.
    pub entries: usize,
    /// Sweep calls that found their parametric model already built.
    pub parametric_hits: usize,
    /// Sweep calls that had to build their parametric model.
    pub parametric_misses: usize,
    /// Parametric models currently cached.
    pub parametric_entries: usize,
}

/// Per-batch accounting of a [`run_batch`](AnalysisService::run_batch) call.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Number of jobs in the batch.
    pub jobs: usize,
    /// Jobs answered from an already-built (or concurrently building) session.
    pub cache_hits: usize,
    /// Jobs that built their session.
    pub cache_misses: usize,
    /// Compositional aggregation runs actually executed for this batch — equal
    /// to the number of *distinct* compositional models built, however many
    /// duplicate trees the batch contains.
    pub aggregation_runs: usize,
    /// Jobs that had to *block* on a concurrent builder of the same model.
    /// [`run_batch`](AnalysisService::run_batch) groups jobs by fingerprint
    /// before dispatch, so within one batch this stays 0: all jobs for one
    /// model are claimed by a single worker, which builds once and then
    /// queries, instead of several workers idling on the same `OnceLock`.
    pub build_waits: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Build-phase time summed over all jobs (cache hits contribute only their
    /// lookup — or the time spent blocking on a concurrent builder).
    pub build_time: Duration,
    /// Query-phase time summed over all jobs.
    pub query_time: Duration,
    /// End-to-end wall-clock time of the batch.
    pub wall_time: Duration,
}

/// The outcome of one [`AnalysisJob`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Structural fingerprint of the job's tree ([`Dft::fingerprint`]).
    pub fingerprint: u64,
    /// `true` when the session came out of the cache (including waiting for a
    /// concurrent builder of the same tree) instead of being built by this job.
    pub cache_hit: bool,
    /// One [`MeasureResult`] per requested measure, in request order — or the
    /// first error the job hit (build or query).
    pub results: Result<Vec<MeasureResult>>,
    /// Compositional aggregation runs this job executed: 1 when it built a
    /// compositional session, 0 for cache hits, monolithic builds and failed
    /// builds.
    pub aggregation_runs: usize,
    /// `true` when this job blocked on a concurrent builder of the same model
    /// (a cache "hit" that still paid most of the build latency).
    pub build_wait: bool,
    /// Time this job spent obtaining its session (≈ lookup cost on a hit, full
    /// conversion + aggregation on a miss).
    pub build: Duration,
    /// Time this job spent answering its measures against the session.
    pub query: Duration,
}

/// The outcome of a whole batch: per-job reports in submission order plus the
/// batch-level accounting.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One report per submitted job, in the same order as the batch slice.
    pub jobs: Vec<JobReport>,
    /// Cache and phase-timing accounting for the batch.
    pub stats: BatchStats,
}

/// A rate-sweep job: one tree, one set of measures, many rate [`Valuation`]s.
///
/// The service aggregates the tree's *structure* once into a shared
/// [`ParametricAnalyzer`] (cached by [`Dft::structural_fingerprint`], so every
/// rate variant of the same structure reuses it — across sweep calls too) and
/// instantiates one numeric session per distinct valuation (cached by
/// `(structural fingerprint, valuation)`).
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The tree whose structure is swept; its own rates define the *base*
    /// valuation but do not otherwise constrain the sweep.
    pub dft: Dft,
    /// Analysis options; must use the compositional method (the monolithic
    /// baseline has no parametric form).
    pub options: AnalysisOptions,
    /// The measures to evaluate per valuation, answered in one
    /// [`query_all`](Analyzer::query_all) pass each.
    pub measures: Vec<Measure>,
    /// The rate assignments to instantiate, typically built via
    /// [`ParamTable`](crate::parametric::ParamTable) constructors.
    pub valuations: Vec<Valuation>,
}

impl SweepJob {
    /// Bundles a tree, options, measures and valuations into a sweep job.
    pub fn new(
        dft: Dft,
        options: AnalysisOptions,
        measures: Vec<Measure>,
        valuations: Vec<Valuation>,
    ) -> SweepJob {
        SweepJob {
            dft,
            options,
            measures,
            valuations,
        }
    }
}

/// The outcome of one valuation of a [`SweepJob`].
#[derive(Debug, Clone)]
pub struct SweepPointReport {
    /// Fingerprint of the valuation ([`Valuation::fingerprint`]).
    pub valuation_fingerprint: u64,
    /// `true` when the instantiated session came out of the cache.
    pub cache_hit: bool,
    /// One [`MeasureResult`] per requested measure, in request order — or the
    /// first error (invalid valuation, query failure).
    pub results: Result<Vec<MeasureResult>>,
    /// Time spent instantiating (rate-form evaluation + CTMDP setup) or
    /// fetching the session.
    pub instantiate: Duration,
    /// Time spent answering the measures.
    pub query: Duration,
}

/// Batch-level accounting of a [`run_sweep`](AnalysisService::run_sweep) call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Number of valuations in the sweep.
    pub valuations: usize,
    /// Valuations answered from an already-instantiated session.
    pub cache_hits: usize,
    /// Valuations that instantiated their session.
    pub cache_misses: usize,
    /// `true` when the parametric model itself came out of the cache.
    pub parametric_cache_hit: bool,
    /// Compositional aggregation runs executed by this call: 1 when it built
    /// the parametric model, 0 on a parametric cache hit — never once per
    /// valuation.
    pub aggregation_runs: usize,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// Time spent obtaining the parametric model (full aggregation on a miss).
    pub build_time: Duration,
    /// Instantiation time summed over all valuations.
    pub instantiate_time: Duration,
    /// Query time summed over all valuations.
    pub query_time: Duration,
    /// End-to-end wall-clock time of the sweep.
    pub wall_time: Duration,
}

/// The outcome of a whole [`SweepJob`]: per-valuation reports in request order
/// plus the sweep-level accounting.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One report per valuation, in the same order as the job's valuations.
    pub points: Vec<SweepPointReport>,
    /// Cache and phase-timing accounting for the sweep.
    pub stats: SweepStats,
}

/// A thread-safe, cache-backed analysis front end for portfolios of DFTs.
///
/// See the [module documentation](self) for the full story and an example.  The
/// service is `Send + Sync` (statically asserted below): one instance can be
/// shared behind an `Arc` by any number of submitting threads, and each
/// [`run_batch`](Self::run_batch) call spins up its own scoped worker pool.
#[derive(Debug, Default)]
pub struct AnalysisService {
    options: ServiceOptions,
    cache: Mutex<Cache>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    parametric_hits: AtomicUsize,
    parametric_misses: AtomicUsize,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnalysisService>();
    assert_send_sync::<AnalysisJob>()
};

impl AnalysisService {
    /// Creates a service with the given options.
    pub fn new(options: ServiceOptions) -> AnalysisService {
        AnalysisService {
            options,
            ..AnalysisService::default()
        }
    }

    /// The options the service was created with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Runs a batch of jobs on the worker pool and reports per-job results plus
    /// cache and phase-timing accounting.
    ///
    /// Dispatch is *cache-aware*: jobs are grouped by their cache key (the
    /// tree's fingerprint plus analysis options); one *leader* job per group
    /// builds the session, and only then are the group's remaining jobs
    /// released to the whole pool as cheap cache-hit work.  No worker ever
    /// claims a duplicate while its model is still being built — the naive
    /// in-order cursor would leave it blocking on the in-flight build (see
    /// [`BatchStats::build_waits`]) — yet the released duplicates still run
    /// in parallel across the pool.  Reports keep submission order.  Job
    /// errors (unsupported features, numerical failures) are reported per job
    /// in [`JobReport::results`]; they never abort the batch.
    pub fn run_batch(&self, jobs: &[AnalysisJob]) -> ServiceReport {
        let started = Instant::now();
        let workers = self.worker_count(jobs.len());

        // Group job indices by cache key, keeping first-appearance order so a
        // single-worker run still processes jobs in a deterministic order.
        let mut group_of: HashMap<CacheKey, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (index, job) in jobs.iter().enumerate() {
            let key = CacheKey::new(&job.dft, &job.options);
            let group = *group_of.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[group].push(index);
        }

        let cursor = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        // Duplicate jobs whose model is already built, released for any worker
        // to pick up; the condvar wakes idle workers when releases happen.
        let released: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::new());
        let ready = Condvar::new();
        let slots: Vec<OnceLock<JobReport>> = jobs.iter().map(|_| OnceLock::new()).collect();

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let run = |index: usize| {
                        slots[index]
                            .set(self.run_job(&jobs[index]))
                            .expect("each job index is claimed by exactly one worker");
                        if completed.fetch_add(1, Ordering::Relaxed) + 1 == jobs.len() {
                            ready.notify_all();
                        }
                    };
                    loop {
                        // Released duplicates first: they are warm cache hits.
                        let follower = released.lock().expect("release queue lock").pop_front();
                        if let Some(index) = follower {
                            run(index);
                            continue;
                        }
                        let group = cursor.fetch_add(1, Ordering::Relaxed);
                        if let Some(indices) = groups.get(group) {
                            // The leader builds the group's model; only then do
                            // its duplicates become claimable, so nobody blocks
                            // on the in-flight build.
                            run(indices[0]);
                            if indices.len() > 1 {
                                released
                                    .lock()
                                    .expect("release queue lock")
                                    .extend(indices[1..].iter().copied());
                                ready.notify_all();
                            }
                            continue;
                        }
                        // Nothing claimable right now: the batch is either done
                        // or other workers will still release duplicates.  The
                        // timeout guards against a wakeup racing the release.
                        let guard = released.lock().expect("release queue lock");
                        if completed.load(Ordering::Relaxed) == jobs.len() {
                            break;
                        }
                        if guard.is_empty() {
                            let _ = ready
                                .wait_timeout(guard, Duration::from_millis(1))
                                .expect("release queue lock");
                        }
                    }
                });
            }
        });

        let job_reports: Vec<JobReport> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("the scope ends only after every job ran")
            })
            .collect();

        let mut stats = BatchStats {
            jobs: job_reports.len(),
            workers,
            wall_time: started.elapsed(),
            ..BatchStats::default()
        };
        for report in &job_reports {
            if report.cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            stats.aggregation_runs += report.aggregation_runs;
            stats.build_waits += usize::from(report.build_wait);
            stats.build_time += report.build;
            stats.query_time += report.query;
        }

        ServiceReport {
            jobs: job_reports,
            stats,
        }
    }

    /// Returns the shared [`Analyzer`] session for one DFT, building it if no
    /// structurally identical tree with the same options is cached yet.
    ///
    /// This is the single-job face of the service: callers that want to hold a
    /// session across many batches (or query it directly) get the same
    /// exactly-once build and LRU accounting as [`run_batch`](Self::run_batch).
    ///
    /// # Errors
    ///
    /// Propagates [`Analyzer::new`] errors.  A failed build is cached too — the
    /// failure is deterministic, so retrying a structurally identical tree
    /// returns the same error without paying the construction cost again.
    pub fn analyzer(&self, dft: &Dft, options: &AnalysisOptions) -> Result<Arc<Analyzer>> {
        self.session(CacheKey::new(dft, options), dft, options).0
    }

    /// Runs a rate sweep: the tree's structure is aggregated once into a
    /// cached [`ParametricAnalyzer`] (shared by *every* rate variant of the
    /// same structure, this call and future ones), then the valuations are
    /// instantiated and queried on the worker pool.
    ///
    /// Instantiated sessions enter the regular LRU session cache keyed by
    /// `(structural fingerprint, valuation)`, so repeated valuations — within
    /// one sweep or across sweeps and batches — never pay instantiation twice.
    /// Per-valuation errors are reported in place and never abort the sweep.
    pub fn run_sweep(&self, job: &SweepJob) -> SweepReport {
        let started = Instant::now();
        let structural = job.dft.structural_fingerprint();

        let build_start = Instant::now();
        let (parametric, parametric_cache_hit) = self.parametric(structural, job);
        let build_time = build_start.elapsed();

        let workers = self.worker_count(job.valuations.len());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<SweepPointReport>> =
            job.valuations.iter().map(|_| OnceLock::new()).collect();

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(valuation) = job.valuations.get(index) else {
                        break;
                    };
                    slots[index]
                        .set(self.run_sweep_point(&parametric, structural, job, valuation))
                        .expect("each valuation index is claimed by exactly one worker");
                });
            }
        });

        let points: Vec<SweepPointReport> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("the scope ends only after every valuation ran")
            })
            .collect();

        let mut stats = SweepStats {
            valuations: points.len(),
            parametric_cache_hit,
            aggregation_runs: usize::from(!parametric_cache_hit && parametric.is_ok()),
            workers,
            build_time,
            wall_time: started.elapsed(),
            ..SweepStats::default()
        };
        for point in &points {
            if point.cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            stats.instantiate_time += point.instantiate;
            stats.query_time += point.query;
        }

        SweepReport { points, stats }
    }

    fn run_sweep_point(
        &self,
        parametric: &Result<Arc<ParametricAnalyzer>>,
        structural: u64,
        job: &SweepJob,
        valuation: &Valuation,
    ) -> SweepPointReport {
        let valuation_fingerprint = valuation.fingerprint();
        let parametric = match parametric {
            Ok(p) => p,
            Err(e) => {
                return SweepPointReport {
                    valuation_fingerprint,
                    cache_hit: false,
                    results: Err(e.clone()),
                    instantiate: Duration::ZERO,
                    query: Duration::ZERO,
                }
            }
        };

        let key = CacheKey::instance(structural, &job.options, valuation);
        let instantiate_start = Instant::now();
        let slot = self.reserve(key);
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            parametric.instantiate(valuation).map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let instantiate = instantiate_start.elapsed();

        match outcome {
            Err(e) => SweepPointReport {
                valuation_fingerprint,
                cache_hit: !built,
                results: Err(e.clone()),
                instantiate,
                query: Duration::ZERO,
            },
            Ok(session) => {
                let query_start = Instant::now();
                let results = session.query_all(&job.measures);
                SweepPointReport {
                    valuation_fingerprint,
                    cache_hit: !built,
                    results,
                    instantiate,
                    query: query_start.elapsed(),
                }
            }
        }
    }

    /// Get-or-build for the shared parametric model of a sweep job; the
    /// boolean is `true` for a cache hit.
    fn parametric(
        &self,
        structural: u64,
        job: &SweepJob,
    ) -> (Result<Arc<ParametricAnalyzer>>, bool) {
        let key = ParamCacheKey {
            structural_fingerprint: structural,
            method: job.options.method,
            epsilon_bits: job.options.epsilon.to_bits(),
        };
        let slot = self.reserve_param(key);
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            ParametricAnalyzer::new(&job.dft, job.options.clone()).map(Arc::new)
        });
        if built {
            self.parametric_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.parametric_hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            match outcome {
                Ok(parametric) => Ok(Arc::clone(parametric)),
                Err(e) => Err(e.clone()),
            },
            !built,
        )
    }

    /// Cumulative cache counters since the service was created.
    pub fn cache_stats(&self) -> CacheStats {
        let (entries, parametric_entries) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.entries.len(), cache.param_entries.len())
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            parametric_hits: self.parametric_hits.load(Ordering::Relaxed),
            parametric_misses: self.parametric_misses.load(Ordering::Relaxed),
            parametric_entries,
        }
    }

    /// Drops every cached session and parametric model (the cumulative
    /// hit/miss counters keep counting).
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.entries.clear();
        cache.param_entries.clear();
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let configured = if self.options.workers == 0 {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.options.workers
        };
        configured.min(jobs).max(1)
    }

    fn run_job(&self, job: &AnalysisJob) -> JobReport {
        let key = CacheKey::new(&job.dft, &job.options);
        let fingerprint = key.fingerprint;
        let build_start = Instant::now();
        let (session, cache_hit, build_wait) = self.session_tracked(key, &job.dft, &job.options);
        let build = build_start.elapsed();
        match session {
            Err(e) => JobReport {
                fingerprint,
                cache_hit,
                results: Err(e),
                aggregation_runs: 0,
                build_wait,
                build,
                query: Duration::ZERO,
            },
            Ok(analyzer) => {
                let aggregation_runs = if cache_hit {
                    0
                } else {
                    analyzer.aggregation_runs()
                };
                let query_start = Instant::now();
                let results = analyzer.query_all(&job.measures);
                JobReport {
                    fingerprint,
                    cache_hit,
                    results,
                    aggregation_runs,
                    build_wait,
                    build,
                    query: query_start.elapsed(),
                }
            }
        }
    }

    fn session(
        &self,
        key: CacheKey,
        dft: &Dft,
        options: &AnalysisOptions,
    ) -> (Result<Arc<Analyzer>>, bool) {
        let (session, cache_hit, _) = self.session_tracked(key, dft, options);
        (session, cache_hit)
    }

    /// Get-or-build with exactly-once semantics; the first boolean is `true`
    /// for a cache hit (the session existed or a concurrent worker built it),
    /// the second when the hit *blocked* on a concurrent builder.  The caller
    /// supplies the key so the fingerprint is hashed once per job.
    fn session_tracked(
        &self,
        key: CacheKey,
        dft: &Dft,
        options: &AnalysisOptions,
    ) -> (Result<Arc<Analyzer>>, bool, bool) {
        let slot = self.reserve(key);
        // A slot that is still empty here either becomes ours to build or means
        // another worker is building it right now — in the latter case the
        // `get_or_init` below blocks for the whole build.
        let ready = slot.get().is_some();
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            Analyzer::new(dft, options.clone()).map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            match outcome {
                Ok(analyzer) => Ok(Arc::clone(analyzer)),
                Err(e) => Err(e.clone()),
            },
            !built,
            !built && !ready,
        )
    }

    /// Returns the slot for `key`, inserting a fresh one (and evicting the
    /// least recently used *initialized* entry beyond capacity) under the cache
    /// lock.  The actual build happens outside the lock, so a slow aggregation
    /// never stalls jobs for other trees.
    fn reserve(&self, key: CacheKey) -> Slot {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.slot);
        }
        let slot: Slot = Arc::new(OnceLock::new());
        cache.entries.insert(
            key,
            CacheEntry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        let capacity = self.options.cache_capacity;
        while capacity > 0 && cache.entries.len() > capacity {
            // In-flight (uninitialized) slots are exempt: evicting one would let
            // a racing duplicate rebuild the same model.
            let victim = cache
                .entries
                .iter()
                .filter(|(k, e)| **k != key && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    cache.entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        slot
    }

    /// [`reserve`](Self::reserve) for the parametric-model cache: same LRU
    /// policy and capacity, its own key space (parametric models are far
    /// rarer and far more valuable than instantiated sessions, so they do not
    /// compete with them for slots).
    fn reserve_param(&self, key: ParamCacheKey) -> ParamSlot {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.param_entries.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.slot);
        }
        let slot: ParamSlot = Arc::new(OnceLock::new());
        cache.param_entries.insert(
            key,
            ParamCacheEntry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        let capacity = self.options.cache_capacity;
        while capacity > 0 && cache.param_entries.len() > capacity {
            let victim = cache
                .param_entries
                .iter()
                .filter(|(k, e)| **k != key && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    cache.param_entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn spare_tree(prefix: &str, rate: f64) -> Dft {
        let mut b = DftBuilder::new();
        let p = b
            .basic_event(&format!("{prefix}_P"), rate, Dormancy::Hot)
            .unwrap();
        let s = b
            .basic_event(&format!("{prefix}_S"), rate, Dormancy::Cold)
            .unwrap();
        let top = b.spare_gate(&format!("{prefix}_Top"), &[p, s]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn duplicate_trees_build_once() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 2,
            cache_capacity: 8,
        });
        let jobs: Vec<AnalysisJob> = (0..5)
            .map(|i| {
                AnalysisJob::new(
                    // Different names, identical structure: same fingerprint.
                    spare_tree(&format!("svc{i}"), 1.0),
                    AnalysisOptions::default(),
                    vec![Measure::Unreliability(1.0)],
                )
            })
            .collect();
        let report = service.run_batch(&jobs);
        assert_eq!(report.stats.jobs, 5);
        assert_eq!(report.stats.cache_misses, 1);
        assert_eq!(report.stats.cache_hits, 4);
        assert_eq!(report.stats.aggregation_runs, 1);
        let expected = 1.0 - 2.0 * (-1.0f64).exp();
        for job in &report.jobs {
            let results = job.results.as_ref().unwrap();
            assert_eq!(results.len(), 1);
            assert!((results[0].value() - expected).abs() < 1e-6);
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn method_and_epsilon_split_the_cache() {
        let service = AnalysisService::new(ServiceOptions::default());
        let dft = spare_tree("svc_key", 1.0);
        let compositional = AnalysisOptions::default();
        let monolithic = AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        };
        let loose = AnalysisOptions {
            epsilon: 1e-6,
            ..AnalysisOptions::default()
        };
        let a = service.analyzer(&dft, &compositional).unwrap();
        let b = service.analyzer(&dft, &monolithic).unwrap();
        let c = service.analyzer(&dft, &loose).unwrap();
        let a2 = service.analyzer(&dft, &compositional).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(service.cache_stats().entries, 3);
        assert_eq!(service.cache_stats().misses, 3);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 2,
        });
        let options = AnalysisOptions::default();
        let first = spare_tree("svc_lru_a", 1.0);
        let second = spare_tree("svc_lru_b", 2.0);
        let third = spare_tree("svc_lru_c", 3.0);
        service.analyzer(&first, &options).unwrap();
        service.analyzer(&second, &options).unwrap();
        // Touch `first` so `second` is the least recently used …
        service.analyzer(&first, &options).unwrap();
        // … and inserting `third` evicts `second`.
        service.analyzer(&third, &options).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        service.analyzer(&first, &options).unwrap();
        assert_eq!(service.cache_stats().hits, 2, "first survived the eviction");
        service.analyzer(&second, &options).unwrap();
        assert_eq!(service.cache_stats().misses, 4, "second was rebuilt");
    }

    #[test]
    fn job_errors_are_reported_in_place() {
        // A query error (unavailability on a non-repairable tree) must not
        // abort the batch: the failing job reports its error, the rest run.
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 4,
        });
        let jobs = vec![
            AnalysisJob::new(
                spare_tree("svc_err_a", 1.0),
                AnalysisOptions::default(),
                vec![Measure::Unavailability],
            ),
            AnalysisJob::new(
                spare_tree("svc_err_b", 2.0),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            ),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.jobs[0].results.is_err(), "not repairable");
        assert!(report.jobs[1].results.is_ok());
        assert_eq!(report.stats.jobs, 2);
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let service = AnalysisService::new(ServiceOptions::default());
        let report = service.run_batch(&[]);
        assert_eq!(report.stats.jobs, 0);
        assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 0);
        assert!(report.jobs.is_empty());
    }
}
