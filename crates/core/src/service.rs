//! The portfolio front end: a thread-safe, cache-backed service over many
//! [`Analyzer`] sessions.
//!
//! The [`Analyzer`] exploits the paper's economics
//! *within* one tree: model construction is expensive, queries against the built
//! model are cheap.  Real workloads analyze whole portfolios of DFT variants —
//! fleets of similar systems, parameter studies, repeated submissions of the
//! same design — where many trees are structurally identical and should never
//! pay aggregation twice.  [`AnalysisService`] extends the same economics
//! *across* trees:
//!
//! * **Batching** — [`run_batch`](AnalysisService::run_batch) accepts a slice of
//!   [`AnalysisJob`]s (each a DFT, its [`AnalysisOptions`] and a list of owned
//!   [`Measure`]s) and executes them on a [`std::thread::scope`] worker pool.
//! * **Caching** — built sessions are shared through an LRU cache of
//!   `Arc<Analyzer>` keyed by [`Dft::fingerprint`] (plus the analysis method and
//!   epsilon).  A batch over N copies of one tree runs aggregation exactly
//!   once; the other N−1 jobs are cache hits that go straight to the query
//!   phase.
//! * **Exactly-once builds under concurrency** — each cache entry is an
//!   `Arc<OnceLock<…>>`: when two workers race for the same fingerprint, one
//!   builds while the other blocks on the lock and then shares the result,
//!   instead of building a duplicate model.
//! * **Determinism** — workers only share immutable `Arc<Analyzer>` sessions,
//!   so every job's results are bit-identical to what a sequential
//!   [`Analyzer`] run over the same tree would produce, whatever the worker
//!   count or job interleaving.
//!
//! # Example
//!
//! ```
//! use dft::{DftBuilder, Dormancy};
//! use dft_core::service::{AnalysisJob, AnalysisService, ServiceOptions};
//! use dft_core::{AnalysisOptions, Measure};
//!
//! fn variant(rate: f64) -> dft::Dft {
//!     let mut b = DftBuilder::new();
//!     let p = b.basic_event("P", rate, Dormancy::Hot).unwrap();
//!     let s = b.basic_event("S", rate, Dormancy::Cold).unwrap();
//!     let top = b.spare_gate("Top", &[p, s]).unwrap();
//!     b.build(top).unwrap()
//! }
//!
//! let service = AnalysisService::new(ServiceOptions::default());
//! // Six jobs over two distinct structures: only two models are ever built.
//! let jobs: Vec<AnalysisJob> = (0..6)
//!     .map(|i| AnalysisJob::new(
//!         variant(if i % 2 == 0 { 1.0 } else { 2.0 }),
//!         AnalysisOptions::default(),
//!         vec![Measure::curve([0.5, 1.0]), Measure::Mttf],
//!     ))
//!     .collect();
//! let report = service.run_batch(&jobs);
//! assert_eq!(report.stats.cache_misses, 2);
//! assert_eq!(report.stats.cache_hits, 4);
//! assert_eq!(report.stats.aggregation_runs, 2);
//! for job in &report.jobs {
//!     let results = job.results.as_ref().unwrap();
//!     assert_eq!(results.len(), 2);
//! }
//! ```

use crate::analysis::{AnalysisOptions, Method};
use crate::engine::Analyzer;
use crate::query::{Measure, MeasureResult};
use crate::{Error, Result};
use dft::Dft;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// One unit of work for the service: analyze one DFT for a list of measures.
///
/// Jobs own all their data (`Measure` holds curve times in a `Vec<f64>`), so a
/// job is `Send + 'static` and can be queued, cloned and shipped to worker
/// threads freely.
#[derive(Debug, Clone)]
pub struct AnalysisJob {
    /// The tree to analyze.
    pub dft: Dft,
    /// Analysis options; the method and epsilon take part in the cache key, so
    /// jobs with different options never share a session.
    pub options: AnalysisOptions,
    /// The measures to evaluate, answered in one
    /// [`query_all`](Analyzer::query_all) pass against the (possibly cached)
    /// session.
    pub measures: Vec<Measure>,
}

impl AnalysisJob {
    /// Bundles a DFT, its options and the requested measures into a job.
    pub fn new(dft: Dft, options: AnalysisOptions, measures: Vec<Measure>) -> AnalysisJob {
        AnalysisJob {
            dft,
            options,
            measures,
        }
    }
}

/// Tuning knobs of an [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads per [`run_batch`](AnalysisService::run_batch) call.
    ///
    /// `0` (the default) means one worker per available CPU core
    /// ([`std::thread::available_parallelism`]); the pool is additionally capped
    /// at the batch size, so small batches never spawn idle threads.
    pub workers: usize,
    /// Maximum number of cached `Arc<Analyzer>` sessions; the least recently
    /// used session is evicted beyond this.  `0` means unbounded.
    pub cache_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> ServiceOptions {
        ServiceOptions {
            workers: 0,
            cache_capacity: 128,
        }
    }
}

/// Sessions are shared per structure *and* per analysis configuration: the same
/// tree analysed monolithically or with a different epsilon is a different
/// model (epsilon drives every numerical query on the session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    method: Method,
    epsilon_bits: u64,
}

impl CacheKey {
    fn new(dft: &Dft, options: &AnalysisOptions) -> CacheKey {
        CacheKey {
            fingerprint: dft.fingerprint(),
            method: options.method,
            epsilon_bits: options.epsilon.to_bits(),
        }
    }
}

/// A cache slot: `OnceLock` guarantees the build runs exactly once even when
/// several workers race for the same key — latecomers block until the winner's
/// session (or its error, which is equally deterministic) is available.
type Slot = Arc<OnceLock<std::result::Result<Arc<Analyzer>, Error>>>;

#[derive(Debug)]
struct CacheEntry {
    slot: Slot,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Cache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Monotonic use counter backing the LRU order (no wall clock involved, so
    /// the order is deterministic under a single worker).
    tick: u64,
}

/// Cumulative cache counters of a service, across all batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs that found their session already built (or being built).
    pub hits: usize,
    /// Jobs that had to build their session.
    pub misses: usize,
    /// Sessions dropped to respect [`ServiceOptions::cache_capacity`].
    pub evictions: usize,
    /// Sessions currently cached.
    pub entries: usize,
}

/// Per-batch accounting of a [`run_batch`](AnalysisService::run_batch) call.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Number of jobs in the batch.
    pub jobs: usize,
    /// Jobs answered from an already-built (or concurrently building) session.
    pub cache_hits: usize,
    /// Jobs that built their session.
    pub cache_misses: usize,
    /// Compositional aggregation runs actually executed for this batch — equal
    /// to the number of *distinct* compositional models built, however many
    /// duplicate trees the batch contains.
    pub aggregation_runs: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Build-phase time summed over all jobs (cache hits contribute only their
    /// lookup — or the time spent blocking on a concurrent builder).
    pub build_time: Duration,
    /// Query-phase time summed over all jobs.
    pub query_time: Duration,
    /// End-to-end wall-clock time of the batch.
    pub wall_time: Duration,
}

/// The outcome of one [`AnalysisJob`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Structural fingerprint of the job's tree ([`Dft::fingerprint`]).
    pub fingerprint: u64,
    /// `true` when the session came out of the cache (including waiting for a
    /// concurrent builder of the same tree) instead of being built by this job.
    pub cache_hit: bool,
    /// One [`MeasureResult`] per requested measure, in request order — or the
    /// first error the job hit (build or query).
    pub results: Result<Vec<MeasureResult>>,
    /// Compositional aggregation runs this job executed: 1 when it built a
    /// compositional session, 0 for cache hits, monolithic builds and failed
    /// builds.
    pub aggregation_runs: usize,
    /// Time this job spent obtaining its session (≈ lookup cost on a hit, full
    /// conversion + aggregation on a miss).
    pub build: Duration,
    /// Time this job spent answering its measures against the session.
    pub query: Duration,
}

/// The outcome of a whole batch: per-job reports in submission order plus the
/// batch-level accounting.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// One report per submitted job, in the same order as the batch slice.
    pub jobs: Vec<JobReport>,
    /// Cache and phase-timing accounting for the batch.
    pub stats: BatchStats,
}

/// A thread-safe, cache-backed analysis front end for portfolios of DFTs.
///
/// See the [module documentation](self) for the full story and an example.  The
/// service is `Send + Sync` (statically asserted below): one instance can be
/// shared behind an `Arc` by any number of submitting threads, and each
/// [`run_batch`](Self::run_batch) call spins up its own scoped worker pool.
#[derive(Debug, Default)]
pub struct AnalysisService {
    options: ServiceOptions,
    cache: Mutex<Cache>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnalysisService>();
    assert_send_sync::<AnalysisJob>()
};

impl AnalysisService {
    /// Creates a service with the given options.
    pub fn new(options: ServiceOptions) -> AnalysisService {
        AnalysisService {
            options,
            ..AnalysisService::default()
        }
    }

    /// The options the service was created with.
    pub fn options(&self) -> &ServiceOptions {
        &self.options
    }

    /// Runs a batch of jobs on the worker pool and reports per-job results plus
    /// cache and phase-timing accounting.
    ///
    /// Jobs are claimed from a shared atomic cursor, so workers stay busy until
    /// the batch drains regardless of how unevenly the per-job costs are
    /// distributed.  Job errors (unsupported features, numerical failures) are
    /// reported per job in [`JobReport::results`]; they never abort the batch.
    pub fn run_batch(&self, jobs: &[AnalysisJob]) -> ServiceReport {
        let started = Instant::now();
        let workers = self.worker_count(jobs.len());
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<JobReport>> = jobs.iter().map(|_| OnceLock::new()).collect();

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    slots[index]
                        .set(self.run_job(job))
                        .expect("each job index is claimed by exactly one worker");
                });
            }
        });

        let job_reports: Vec<JobReport> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("the scope ends only after every job ran")
            })
            .collect();

        let mut stats = BatchStats {
            jobs: job_reports.len(),
            workers,
            wall_time: started.elapsed(),
            ..BatchStats::default()
        };
        for report in &job_reports {
            if report.cache_hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            stats.aggregation_runs += report.aggregation_runs;
            stats.build_time += report.build;
            stats.query_time += report.query;
        }

        ServiceReport {
            jobs: job_reports,
            stats,
        }
    }

    /// Returns the shared [`Analyzer`] session for one DFT, building it if no
    /// structurally identical tree with the same options is cached yet.
    ///
    /// This is the single-job face of the service: callers that want to hold a
    /// session across many batches (or query it directly) get the same
    /// exactly-once build and LRU accounting as [`run_batch`](Self::run_batch).
    ///
    /// # Errors
    ///
    /// Propagates [`Analyzer::new`] errors.  A failed build is cached too — the
    /// failure is deterministic, so retrying a structurally identical tree
    /// returns the same error without paying the construction cost again.
    pub fn analyzer(&self, dft: &Dft, options: &AnalysisOptions) -> Result<Arc<Analyzer>> {
        self.session(CacheKey::new(dft, options), dft, options).0
    }

    /// Cumulative cache counters since the service was created.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.cache.lock().expect("cache lock").entries.len(),
        }
    }

    /// Drops every cached session (the cumulative hit/miss counters keep
    /// counting).
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").entries.clear();
    }

    fn worker_count(&self, jobs: usize) -> usize {
        let configured = if self.options.workers == 0 {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.options.workers
        };
        configured.min(jobs).max(1)
    }

    fn run_job(&self, job: &AnalysisJob) -> JobReport {
        let key = CacheKey::new(&job.dft, &job.options);
        let fingerprint = key.fingerprint;
        let build_start = Instant::now();
        let (session, cache_hit) = self.session(key, &job.dft, &job.options);
        let build = build_start.elapsed();
        match session {
            Err(e) => JobReport {
                fingerprint,
                cache_hit,
                results: Err(e),
                aggregation_runs: 0,
                build,
                query: Duration::ZERO,
            },
            Ok(analyzer) => {
                let aggregation_runs = if cache_hit {
                    0
                } else {
                    analyzer.aggregation_runs()
                };
                let query_start = Instant::now();
                let results = analyzer.query_all(&job.measures);
                JobReport {
                    fingerprint,
                    cache_hit,
                    results,
                    aggregation_runs,
                    build,
                    query: query_start.elapsed(),
                }
            }
        }
    }

    /// Get-or-build with exactly-once semantics; the boolean is `true` for a
    /// cache hit (the session existed or a concurrent worker built it).  The
    /// caller supplies the key so the fingerprint is hashed once per job.
    fn session(
        &self,
        key: CacheKey,
        dft: &Dft,
        options: &AnalysisOptions,
    ) -> (Result<Arc<Analyzer>>, bool) {
        let slot = self.reserve(key);
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            Analyzer::new(dft, options.clone()).map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (
            match outcome {
                Ok(analyzer) => Ok(Arc::clone(analyzer)),
                Err(e) => Err(e.clone()),
            },
            !built,
        )
    }

    /// Returns the slot for `key`, inserting a fresh one (and evicting the
    /// least recently used *initialized* entry beyond capacity) under the cache
    /// lock.  The actual build happens outside the lock, so a slow aggregation
    /// never stalls jobs for other trees.
    fn reserve(&self, key: CacheKey) -> Slot {
        let mut cache = self.cache.lock().expect("cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(&key) {
            entry.last_used = tick;
            return Arc::clone(&entry.slot);
        }
        let slot: Slot = Arc::new(OnceLock::new());
        cache.entries.insert(
            key,
            CacheEntry {
                slot: Arc::clone(&slot),
                last_used: tick,
            },
        );
        let capacity = self.options.cache_capacity;
        while capacity > 0 && cache.entries.len() > capacity {
            // In-flight (uninitialized) slots are exempt: evicting one would let
            // a racing duplicate rebuild the same model.
            let victim = cache
                .entries
                .iter()
                .filter(|(k, e)| **k != key && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    cache.entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft::{DftBuilder, Dormancy};

    fn spare_tree(prefix: &str, rate: f64) -> Dft {
        let mut b = DftBuilder::new();
        let p = b
            .basic_event(&format!("{prefix}_P"), rate, Dormancy::Hot)
            .unwrap();
        let s = b
            .basic_event(&format!("{prefix}_S"), rate, Dormancy::Cold)
            .unwrap();
        let top = b.spare_gate(&format!("{prefix}_Top"), &[p, s]).unwrap();
        b.build(top).unwrap()
    }

    #[test]
    fn duplicate_trees_build_once() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 2,
            cache_capacity: 8,
        });
        let jobs: Vec<AnalysisJob> = (0..5)
            .map(|i| {
                AnalysisJob::new(
                    // Different names, identical structure: same fingerprint.
                    spare_tree(&format!("svc{i}"), 1.0),
                    AnalysisOptions::default(),
                    vec![Measure::Unreliability(1.0)],
                )
            })
            .collect();
        let report = service.run_batch(&jobs);
        assert_eq!(report.stats.jobs, 5);
        assert_eq!(report.stats.cache_misses, 1);
        assert_eq!(report.stats.cache_hits, 4);
        assert_eq!(report.stats.aggregation_runs, 1);
        let expected = 1.0 - 2.0 * (-1.0f64).exp();
        for job in &report.jobs {
            let results = job.results.as_ref().unwrap();
            assert_eq!(results.len(), 1);
            assert!((results[0].value() - expected).abs() < 1e-6);
        }
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn method_and_epsilon_split_the_cache() {
        let service = AnalysisService::new(ServiceOptions::default());
        let dft = spare_tree("svc_key", 1.0);
        let compositional = AnalysisOptions::default();
        let monolithic = AnalysisOptions {
            method: Method::Monolithic,
            ..AnalysisOptions::default()
        };
        let loose = AnalysisOptions {
            epsilon: 1e-6,
            ..AnalysisOptions::default()
        };
        let a = service.analyzer(&dft, &compositional).unwrap();
        let b = service.analyzer(&dft, &monolithic).unwrap();
        let c = service.analyzer(&dft, &loose).unwrap();
        let a2 = service.analyzer(&dft, &compositional).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(service.cache_stats().entries, 3);
        assert_eq!(service.cache_stats().misses, 3);
        assert_eq!(service.cache_stats().hits, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 2,
        });
        let options = AnalysisOptions::default();
        let first = spare_tree("svc_lru_a", 1.0);
        let second = spare_tree("svc_lru_b", 2.0);
        let third = spare_tree("svc_lru_c", 3.0);
        service.analyzer(&first, &options).unwrap();
        service.analyzer(&second, &options).unwrap();
        // Touch `first` so `second` is the least recently used …
        service.analyzer(&first, &options).unwrap();
        // … and inserting `third` evicts `second`.
        service.analyzer(&third, &options).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        service.analyzer(&first, &options).unwrap();
        assert_eq!(service.cache_stats().hits, 2, "first survived the eviction");
        service.analyzer(&second, &options).unwrap();
        assert_eq!(service.cache_stats().misses, 4, "second was rebuilt");
    }

    #[test]
    fn job_errors_are_reported_in_place() {
        // A query error (unavailability on a non-repairable tree) must not
        // abort the batch: the failing job reports its error, the rest run.
        let service = AnalysisService::new(ServiceOptions {
            workers: 1,
            cache_capacity: 4,
        });
        let jobs = vec![
            AnalysisJob::new(
                spare_tree("svc_err_a", 1.0),
                AnalysisOptions::default(),
                vec![Measure::Unavailability],
            ),
            AnalysisJob::new(
                spare_tree("svc_err_b", 2.0),
                AnalysisOptions::default(),
                vec![Measure::Unreliability(1.0)],
            ),
        ];
        let report = service.run_batch(&jobs);
        assert!(report.jobs[0].results.is_err(), "not repairable");
        assert!(report.jobs[1].results.is_ok());
        assert_eq!(report.stats.jobs, 2);
    }

    #[test]
    fn empty_batch_is_a_clean_no_op() {
        let service = AnalysisService::new(ServiceOptions::default());
        let report = service.run_batch(&[]);
        assert_eq!(report.stats.jobs, 0);
        assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 0);
        assert!(report.jobs.is_empty());
    }
}
